package agree

// serve.go is the service face of the reproduction: instead of one consensus
// instance per call (Run) it operates a long-running replicated log —
// pipelined consensus instances on the timed engine, fed by a workload
// generator — and reports what a client of that service observes: commit
// latency percentiles, sustained commands per simulated hour, and the
// recovery time after a leader crash.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/harness"
	"repro/internal/laws"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/smr"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// WorkloadSpec describes how commands arrive at the replicated log. Open
// specs (fixed, Poisson, bursty) model an external arrival stream that does
// not react to service latency; the closed spec models a finite client
// population where each client waits for its previous command to commit,
// thinks, and submits the next. All sampling is deterministic per seed
// (SplitMix64), so a service run replays bit-identically.
type WorkloadSpec struct {
	kind      string
	rate      float64
	burstRate float64
	baseDur   float64
	burstDur  float64
	clients   int
	think     float64
	poisson   bool
	seed      int64
}

// FixedArrivals is the open-loop fixed-rate stream: one command every 1/rate
// time units.
func FixedArrivals(rate float64, seed int64) WorkloadSpec {
	return WorkloadSpec{kind: "fixed", rate: rate, seed: seed}
}

// PoissonArrivals is the open-loop Poisson stream with the given mean rate.
func PoissonArrivals(rate float64, seed int64) WorkloadSpec {
	return WorkloadSpec{kind: "poisson", rate: rate, seed: seed}
}

// BurstyArrivals is the open-loop two-phase cycle: baseDur time units of
// Poisson arrivals at baseRate, then burstDur at burstRate, repeating.
func BurstyArrivals(baseRate, burstRate, baseDur, burstDur float64, seed int64) WorkloadSpec {
	return WorkloadSpec{kind: "bursty", rate: baseRate, burstRate: burstRate,
		baseDur: baseDur, burstDur: burstDur, seed: seed}
}

// ClosedClients is the closed-loop population: clients concurrent clients,
// each thinking for think time units between its commit and its next
// command (exponentially distributed when poissonThink is set).
func ClosedClients(clients int, think float64, poissonThink bool, seed int64) WorkloadSpec {
	return WorkloadSpec{kind: "closed", clients: clients, think: think,
		poisson: poissonThink, seed: seed}
}

// IsZero reports whether the spec is unset.
func (w WorkloadSpec) IsZero() bool { return w.kind == "" }

// materialize builds fresh workload generators for one service run. Fresh
// per call: the generators are consumed by the run, and re-materializing
// from the spec is what makes repeated Serve invocations bit-identical.
func (w WorkloadSpec) materialize() (*workload.Open, *workload.Closed, error) {
	switch w.kind {
	case "fixed":
		o, err := workload.NewOpen(workload.Fixed{Rate: w.rate}, w.seed)
		return o, nil, err
	case "poisson":
		o, err := workload.NewOpen(workload.Poisson{Rate: w.rate}, w.seed)
		return o, nil, err
	case "bursty":
		o, err := workload.NewOpen(workload.Bursty(w.rate, w.burstRate, w.baseDur, w.burstDur), w.seed)
		return o, nil, err
	case "closed":
		c, err := workload.NewClosed(w.clients, w.think, w.poisson, w.seed)
		return nil, c, err
	case "":
		return nil, nil, fmt.Errorf("agree: ServeConfig needs a workload (FixedArrivals, PoissonArrivals, BurstyArrivals or ClosedClients)")
	default:
		return nil, nil, fmt.Errorf("agree: unknown workload kind %q", w.kind)
	}
}

// ServeOmissions injects omission faults mid-stream: each listed replica
// drops its whole per-round send plan with SendProb and blocks each inbound
// sender with RecvProb, sampled from pure per-(slot, replica, round) hashes
// of Seed.
type ServeOmissions struct {
	// Procs are the omission-faulty replicas (1-based ids).
	Procs []int
	// SendProb is the per-round whole-plan send-omission probability.
	SendProb float64
	// RecvProb is the per-(round, sender) receive-omission probability.
	RecvProb float64
	// Seed selects the fault sample.
	Seed int64
}

// ServeConfig configures a replicated-log service run.
type ServeConfig struct {
	// N is the number of replicas (required).
	N int
	// Protocol selects the per-slot consensus algorithm: ProtocolCRW
	// (default) or ProtocolEarlyStop.
	Protocol Protocol
	// Bits is the command bit width (default 64).
	Bits int
	// RotateLeader renumbers replicas per slot so a live replica always
	// holds the coordinator role; without it a dead static coordinator
	// costs one wasted round on every subsequent slot.
	RotateLeader bool
	// Engine selects the execution engine (default EngineTimed — the
	// service's headline metrics are measured on the event clock).
	Engine EngineKind
	// Latency configures the timed engine's latency model; the zero spec
	// selects the default within-bound model (D=1, δ=0.1).
	Latency LatencySpec
	// Workload describes the command arrival process (required).
	Workload WorkloadSpec
	// MaxCommands stops the service after this many commits (the final
	// batch may overshoot). At least one of MaxCommands, Duration and
	// MaxSlots must bound the run.
	MaxCommands int
	// Duration stops the service at the first slot that would launch after
	// this simulated time.
	Duration float64
	// MaxSlots bounds the number of slots.
	MaxSlots int
	// BatchLimit caps the commands committed per slot (0 = unbounded).
	BatchLimit int
	// NoPipeline launches each slot only after the previous one committed;
	// the default overlaps instances one round duration apart.
	NoPipeline bool
	// CrashAt schedules replica crashes: replica id -> simulated time,
	// effective at the first slot launched at or after that time.
	CrashAt map[int]float64
	// Omissions injects omission faults mid-stream; nil injects none.
	Omissions *ServeOmissions
	// Telemetry records per-slot spans and series on the service clock plus
	// the commit-latency histogram; the recording is attached to the report
	// (ServeReport.Telemetry) and deliberately excluded from its JSON form.
	Telemetry bool
}

// LeaderRecovery records one leader crash and the recovery from it.
type LeaderRecovery struct {
	// Replica is the crashed leader.
	Replica int
	// CrashTime is the scheduled crash time.
	CrashTime float64
	// Commit is the earliest commit among instances launched at or after
	// the crash.
	Commit float64
}

// Time returns the recovery time: Commit - CrashTime. With RotateLeader it
// is one round duration (the next instance starts with a live coordinator);
// without, two (the dead coordinator wastes the recovery instance's first
// round).
func (r LeaderRecovery) Time() float64 { return r.Commit - r.CrashTime }

// ServeReport is the validated outcome of a service run. It is plain data —
// integers, floats and integer-keyed maps — so encoding/json serializes it
// canonically and VerifyServeDeterminism can compare runs byte for byte.
type ServeReport struct {
	// Commands is the number of committed commands.
	Commands int
	// Slots is the number of committed log slots.
	Slots int
	// TotalRounds sums the rounds of every slot's instance.
	TotalRounds int
	// RoundsHist maps instance round counts to slot counts.
	RoundsHist map[int]int
	// LastCommit is the simulated time of the final commit.
	LastCommit float64
	// CommandsPerHour is the sustained throughput per simulated hour (3600
	// time units of the latency model).
	CommandsPerHour float64
	// LatencyP50/P99/P999 are client-observed commit-latency percentiles
	// (nearest rank); LatencyMean and LatencyMax complete the distribution.
	LatencyP50, LatencyP99, LatencyP999 float64
	LatencyMean, LatencyMax             float64
	// Recoveries lists every leader crash with its recovery, in crash-time
	// order.
	Recoveries []LeaderRecovery `json:",omitempty"`
	// Crashed maps dead replicas to their scheduled crash time.
	Crashed map[int]float64 `json:",omitempty"`
	// Omissive maps omission-faulty replicas to their omissive-round count.
	Omissive map[int]int `json:",omitempty"`
	// Counters and Ledger aggregate communication over all slots; the
	// cross-slot conservation identity is audited before Serve returns.
	Counters metrics.Counters
	Ledger   metrics.Ledger
	// EnginesBuilt and EngineReuses account the service's engine cache.
	EnginesBuilt int
	EngineReuses int
	// telemetry is the run's recording when ServeConfig.Telemetry was set.
	// It is unexported — and therefore invisible to encoding/json — so the
	// report's byte-identical serialization law is untouched; access it via
	// the Telemetry method.
	telemetry *Telemetry
}

// Telemetry returns the service run's span and timeline recording, or nil
// when ServeConfig.Telemetry was not set.
func (r *ServeReport) Telemetry() *Telemetry { return r.telemetry }

// Serve operates the replicated-log service described by the config until
// one of its stop conditions and returns the service report. Every slot's
// instance passes the law audit (conservation, ledger consistency, fault
// budget), per-slot agreement is validated, and the cross-slot aggregate is
// conservation-checked — a silent safety violation inside the stream
// surfaces as an error, never as a report.
func Serve(cfg ServeConfig) (*ServeReport, error) {
	var proto smr.Protocol
	switch cfg.Protocol {
	case "", ProtocolCRW:
		proto = smr.ProtocolCRW
	case ProtocolEarlyStop:
		proto = smr.ProtocolEarlyStop
	default:
		return nil, fmt.Errorf("agree: the service supports %q and %q, not %q", ProtocolCRW, ProtocolEarlyStop, cfg.Protocol)
	}
	if err := cfg.Latency.validate(); err != nil {
		return nil, err
	}
	open, closed, err := cfg.Workload.materialize()
	if err != nil {
		return nil, err
	}
	kind := harness.Kind(cfg.Engine)
	if cfg.Engine == "" {
		kind = harness.KindTimed
	}
	opts := smr.ServeOptions{
		N:            cfg.N,
		Protocol:     proto,
		Bits:         cfg.Bits,
		RotateLeader: cfg.RotateLeader,
		Engine:       kind,
		Latency:      cfg.Latency.model(cfg.Bits),
		Arrivals:     open,
		Clients:      closed,
		MaxCommands:  cfg.MaxCommands,
		Duration:     cfg.Duration,
		MaxSlots:     cfg.MaxSlots,
		BatchLimit:   cfg.BatchLimit,
		NoPipeline:   cfg.NoPipeline,
	}
	if len(cfg.CrashAt) > 0 {
		opts.CrashAt = make(map[sim.ProcID]float64, len(cfg.CrashAt))
		for id, t := range cfg.CrashAt {
			opts.CrashAt[sim.ProcID(id)] = t
		}
	}
	if om := cfg.Omissions; om != nil {
		procs := make([]sim.ProcID, len(om.Procs))
		for i, p := range om.Procs {
			procs[i] = sim.ProcID(p)
		}
		opts.Omit = &smr.OmitOptions{Procs: procs, SendProb: om.SendProb, RecvProb: om.RecvProb, Seed: om.Seed}
	}
	var rec *telemetry.Recorder
	if cfg.Telemetry {
		rec = telemetry.New()
		opts.Telemetry = rec
	}
	res, err := smr.Serve(opts)
	if err != nil {
		return nil, err
	}
	rep := &ServeReport{
		Commands:        res.Commands,
		Slots:           res.Slots,
		TotalRounds:     res.TotalRounds,
		RoundsHist:      res.RoundsHist,
		LastCommit:      res.LastCommit,
		CommandsPerHour: res.PerHour(),
		LatencyP50:      res.Latency.P50,
		LatencyP99:      res.Latency.P99,
		LatencyP999:     res.Latency.P999,
		LatencyMean:     res.Latency.Mean,
		LatencyMax:      res.Latency.Max,
		Counters:        res.Counters,
		Ledger:          res.Ledger,
		EnginesBuilt:    res.EnginesBuilt,
		EngineReuses:    res.EngineReuses,
	}
	for _, r := range res.Recoveries {
		rep.Recoveries = append(rep.Recoveries, LeaderRecovery{
			Replica: int(r.Replica), CrashTime: r.CrashTime, Commit: r.Commit})
	}
	if len(res.Crashed) > 0 {
		rep.Crashed = make(map[int]float64, len(res.Crashed))
		for id, t := range res.Crashed {
			rep.Crashed[int(id)] = t
		}
	}
	if len(res.Omissive) > 0 {
		rep.Omissive = make(map[int]int, len(res.Omissive))
		for id, c := range res.Omissive {
			rep.Omissive[int(id)] = c
		}
	}
	if rec != nil {
		rep.telemetry = &Telemetry{rec: rec}
	}
	return rep, nil
}

// VerifyServeDeterminism checks the determinism law for a service
// configuration: two independent Serve runs must serialize to byte-identical
// reports, and the serialized report must survive a JSON round-trip
// byte-identically — the same law VerifyDeterminism pins for single runs,
// extended to the full service stream (workload sampling, fault injection
// and latency jitter included).
func VerifyServeDeterminism(cfg ServeConfig) error {
	first, err := Serve(cfg)
	if err != nil {
		return err
	}
	second, err := Serve(cfg)
	if err != nil {
		return fmt.Errorf("agree: service re-run failed: %w", err)
	}
	ja, err := json.Marshal(first)
	if err != nil {
		return err
	}
	jb, err := json.Marshal(second)
	if err != nil {
		return err
	}
	if !bytes.Equal(ja, jb) {
		return &laws.Violation{Law: laws.LawDeterminism,
			Detail: fmt.Sprintf("two service runs of one configuration serialized differently:\n%s\nvs\n%s", ja, jb)}
	}
	var rt ServeReport
	if err := json.Unmarshal(ja, &rt); err != nil {
		return &laws.Violation{Law: laws.LawDeterminism,
			Detail: fmt.Sprintf("serialized service report does not deserialize: %v", err)}
	}
	jrt, err := json.Marshal(&rt)
	if err != nil {
		return err
	}
	if !bytes.Equal(ja, jrt) {
		return &laws.Violation{Law: laws.LawDeterminism,
			Detail: fmt.Sprintf("service report changed across a JSON round-trip:\n%s\nvs\n%s", ja, jrt)}
	}
	if cfg.Telemetry {
		if a, b := first.Telemetry().MetricsJSON(), second.Telemetry().MetricsJSON(); !bytes.Equal(a, b) {
			return &laws.Violation{Law: laws.LawDeterminism,
				Detail: fmt.Sprintf("two service runs exported different metrics timelines:\n%s\nvs\n%s", a, b)}
		}
		if a, b := first.Telemetry().ChromeTrace(), second.Telemetry().ChromeTrace(); !bytes.Equal(a, b) {
			return &laws.Violation{Law: laws.LawDeterminism,
				Detail: fmt.Sprintf("two service runs exported different Chrome traces:\n%s\nvs\n%s", a, b)}
		}
	}
	return nil
}
