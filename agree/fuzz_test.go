package agree_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/agree"
)

// flattenFuzzReport renders a report into a canonical string: errors are
// compared by message, everything else by value. Two reports render equal
// iff they are semantically bit-identical.
func flattenFuzzReport(rep *agree.FuzzReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seeds=%d executions=%d maxRounds=%d maxDecide=%d maxFaults=%d hist=%v\n",
		rep.Seeds, rep.Executions, rep.MaxRounds, rep.MaxDecideRound, rep.MaxFaults, rep.RoundHistogram)
	for _, f := range rep.Findings {
		fmt.Fprintf(&b, "seed=%d err=%v script=%q shrunk=%q shrunkErr=%v shrunkCrashes=%d crosschecked=%v crossErr=%v\n",
			f.Seed, f.Err, f.Script, f.Shrunk, f.ShrunkErr, f.ShrunkCrashes, f.CrossChecked, f.CrossCheckErr)
	}
	return b.String()
}

// TestFuzzWorkerCountInvariance is the campaign determinism gate: for fixed
// seeds the report must be bit-identical across every worker count. The
// campaign fuzzes the commit-as-data ablation so the invariance covers the
// full pipeline — violations, shrinking and cross-checking included.
// scripts/verify.sh runs this under -race.
func TestFuzzWorkerCountInvariance(t *testing.T) {
	base := agree.FuzzConfig{
		N: 4, T: 2, Seeds: 48, CommitAsData: true,
		CrashProb: 0.35, Shrink: true, CrossCheck: true,
	}
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Workers = workers
		rep, err := agree.Fuzz(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := flattenFuzzReport(rep)
		if workers == 1 {
			want = got
			if len(rep.Findings) == 0 {
				t.Fatal("campaign found no violations on the commit-as-data ablation; the invariance check is vacuous")
			}
			continue
		}
		if got != want {
			t.Errorf("workers=%d report differs from workers=1:\n--- workers=1\n%s--- workers=%d\n%s", workers, want, workers, got)
		}
	}
}

// TestFuzzFaithfulProtocolsFindNothing fuzzes all three faithful protocols:
// no seed may violate consensus or the protocol's round bound.
func TestFuzzFaithfulProtocolsFindNothing(t *testing.T) {
	for _, p := range []agree.Protocol{agree.ProtocolCRW, agree.ProtocolEarlyStop, agree.ProtocolFloodSet} {
		rep, err := agree.Fuzz(agree.FuzzConfig{N: 12, Protocol: p, Seeds: 100, Workers: 0})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(rep.Findings) != 0 {
			t.Errorf("%s: %d findings, first: seed %d, %v (script %q)", p,
				len(rep.Findings), rep.Findings[0].Seed, rep.Findings[0].Err, rep.Findings[0].Script)
		}
		if rep.Seeds != 100 || rep.Executions < 100 {
			t.Errorf("%s: seeds=%d executions=%d, want 100 seeds and >= 100 executions", p, rep.Seeds, rep.Executions)
		}
		if len(rep.RoundHistogram) == 0 {
			t.Errorf("%s: empty round histogram", p)
		}
	}
}

// TestFuzzAblationFindingsReplayViaPublicAPI closes the loop through the
// public API: a finding's shrunk script, fed back through ReplayFaults,
// must reproduce the violation via agree.Run — and must cross-check on the
// lockstep engine.
func TestFuzzAblationFindingsReplayViaPublicAPI(t *testing.T) {
	rep, err := agree.Fuzz(agree.FuzzConfig{
		N: 4, T: 2, Seeds: 100, CommitAsData: true,
		CrashProb: 0.35, Shrink: true, CrossCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings on the commit-as-data ablation")
	}
	for _, f := range rep.Findings[:1] {
		if f.CrossCheckErr != nil {
			t.Fatalf("seed %d: cross-check: %v", f.Seed, f.CrossCheckErr)
		}
		if len(f.CrossChecked) == 0 {
			t.Fatalf("seed %d: cross-check silently skipped", f.Seed)
		}
		if f.ShrunkCrashes > 3 {
			t.Errorf("seed %d: shrunk script %q has %d crashes, want <= 3", f.Seed, f.Shrunk, f.ShrunkCrashes)
		}
		spec, err := agree.ReplayFaults(f.Shrunk)
		if err != nil {
			t.Fatalf("seed %d: ReplayFaults(%q): %v", f.Seed, f.Shrunk, err)
		}
		// The ablated protocol is not reachable through agree.Run's Config,
		// so replay the script on the faithful protocol instead: the same
		// schedule must execute cleanly (ReplayFaults is engine-agnostic),
		// and on the faithful algorithm consensus must hold — the violation
		// is the ablation's, not the schedule's.
		run, err := agree.Run(agree.Config{N: 4, Faults: spec})
		if err != nil {
			t.Fatalf("seed %d: replaying %q on the faithful protocol: %v", f.Seed, f.Shrunk, err)
		}
		if run.ConsensusErr != nil {
			t.Errorf("seed %d: faithful protocol violated consensus under replayed schedule %q: %v",
				f.Seed, f.Shrunk, run.ConsensusErr)
		}
	}
}

// TestFuzzReplayScript pins the replay entry point the CLI's -replay flag
// rides: the same script must violate agreement under the commit-as-data
// campaign config that produced it, pass on the faithful config, and be
// rejected — not silently replayed as failure-free — when it names a
// process the system does not have.
func TestFuzzReplayScript(t *testing.T) {
	const script = "p1@r1:000001/0"
	ablated := agree.FuzzConfig{N: 4, T: 2, CommitAsData: true}
	rep, err := agree.FuzzReplayScript(ablated, script, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "agreement") {
		t.Errorf("ablated replay verdict %v, want an agreement violation", rep.Err)
	}
	if rep.Transcript == "" || !strings.Contains(rep.Transcript, "crash") {
		t.Errorf("transcript lacks the crash:\n%s", rep.Transcript)
	}
	if len(rep.Crashed) != 1 {
		t.Errorf("crashed = %v, want exactly p1", rep.Crashed)
	}

	rep, err = agree.FuzzReplayScript(agree.FuzzConfig{N: 4, T: 2}, script, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil {
		t.Errorf("faithful replay verdict %v, want pass", rep.Err)
	}

	if _, err := agree.FuzzReplayScript(ablated, "p9@r1:/0", false); err == nil {
		t.Error("accepted a script crashing p9 in a 4-process run")
	}
	if _, err := agree.FuzzReplayScript(ablated, "bogus", false); err == nil {
		t.Error("accepted a malformed script")
	}
}

// TestFuzzConfigValidation covers the campaign-level config errors.
func TestFuzzConfigValidation(t *testing.T) {
	if _, err := agree.Fuzz(agree.FuzzConfig{N: 0}); err == nil {
		t.Error("accepted N=0")
	}
	if _, err := agree.Fuzz(agree.FuzzConfig{N: 4, Protocol: agree.ProtocolFloodSet, CommitAsData: true}); err == nil {
		t.Error("accepted a CRW ablation on FloodSet")
	}
	if _, err := agree.Fuzz(agree.FuzzConfig{N: 4, CrashProb: 1.5}); err == nil {
		t.Error("accepted crash probability 1.5")
	}
}

// TestReplayFaultsValidation covers script-level rejection at Run time.
func TestReplayFaultsValidation(t *testing.T) {
	if _, err := agree.ReplayFaults("bogus"); err == nil {
		t.Error("accepted a malformed script")
	}
	spec, err := agree.ReplayFaults("p9@r1:/0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agree.Run(agree.Config{N: 4, Faults: spec}); err == nil {
		t.Error("accepted a script crashing p9 in a 4-process run")
	}
	// The empty script is the failure-free schedule.
	spec, err = agree.ReplayFaults("")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := agree.Run(agree.Config{N: 4, Faults: spec})
	if err != nil || rep.ConsensusErr != nil || rep.Faults() != 0 {
		t.Errorf("empty script: rep=%+v err=%v", rep, err)
	}
}

// TestFuzzReportIsDeepEqualAcrossRuns re-runs one campaign twice with the
// same config and requires reflect.DeepEqual reports — determinism not just
// across worker counts but across invocations.
func TestFuzzReportIsDeepEqualAcrossRuns(t *testing.T) {
	cfg := agree.FuzzConfig{N: 6, T: 3, Seeds: 40, OrderAscending: true, Shrink: true, Workers: 4}
	a, err := agree.Fuzz(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := agree.Fuzz(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Errors are distinct fmt.Errorf values; compare the flattened rendering
	// first (covers messages), then the error-free skeleton deeply.
	if flattenFuzzReport(a) != flattenFuzzReport(b) {
		t.Fatalf("reports differ:\n%s\nvs\n%s", flattenFuzzReport(a), flattenFuzzReport(b))
	}
	stripErrs := func(rep *agree.FuzzReport) {
		for i := range rep.Findings {
			rep.Findings[i].Err = nil
			rep.Findings[i].ShrunkErr = nil
			rep.Findings[i].CrossCheckErr = nil
		}
	}
	stripErrs(a)
	stripErrs(b)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("stripped reports not deeply equal: %+v vs %+v", a, b)
	}
}

// TestFuzzFindsAscendingOrderBoundViolations pins the ablation oracle: the
// ascending-commit-order mutation must surface round-bound findings only.
func TestFuzzFindsAscendingOrderBoundViolations(t *testing.T) {
	rep, err := agree.Fuzz(agree.FuzzConfig{
		N: 5, T: 3, Seeds: 300, OrderAscending: true, CrashProb: 0.35, Shrink: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings on the ascending-order ablation")
	}
	for _, f := range rep.Findings {
		if !strings.Contains(f.Err.Error(), "round bound") {
			t.Errorf("seed %d: %v, want a round-bound violation", f.Seed, f.Err)
		}
	}
}
