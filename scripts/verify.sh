#!/usr/bin/env bash
# verify.sh — the tier-1 verification path: build, vet, test. Run before
# every commit; the exploration differential tests additionally run under the
# race detector (they exercise the parallel explorer).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (parallel explorer + sweep/cross-check + fuzz-campaign + omission + timed differential + pooled-DES differential + law-audit + telemetry tests)"
go test -race -run 'ExploreParallel|Sweep|CrossCheck|Fuzz|Omission|Timed|Law|Planted|Conservation|Audit|Determinism|Pooled|Handle|Telemetry|Chrome' ./internal/check/ ./agree/ ./internal/lockstep/ ./internal/harness/ ./internal/fuzz/ ./internal/sim/ ./internal/timed/ ./internal/des/ ./internal/laws/ ./internal/smr/ ./internal/telemetry/

echo "== scenario catalog (deterministic engine)"
go run ./cmd/agreesim -run all -engines deterministic

echo "verify: OK"
