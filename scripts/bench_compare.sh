#!/usr/bin/env bash
# bench_compare.sh — the CI perf regression gate: run a fresh (short) pass of
# the E-series benchmarks and diff it against the committed BENCH_<date>.json
# baseline produced by scripts/bench.sh.
#
#   - allocs/op regressions FAIL the gate: allocation counts are
#     machine-independent, so they gate reliably even on noisy CI runners.
#     Benchmarks in the zero-alloc set must match the baseline exactly (any
#     increase fails); the rest get ALLOC_THRESHOLD percent (+1 absolute)
#     slack. Worker-pool and randomized-average benchmarks are excluded from
#     the alloc gate (their counts depend on GOMAXPROCS / iteration count).
#   - ns/op regressions WARN by default (wall-clock is machine-dependent;
#     the committed baseline usually comes from a different box). Set
#     STRICT_TIME=1 to fail on them instead — useful when comparing two runs
#     on the same machine.
#
# Usage:
#   scripts/bench_compare.sh                    # newest BENCH_*.json baseline
#   scripts/bench_compare.sh BENCH_2026-07-28.json
#   BENCHTIME=1s TIME_THRESHOLD=15 scripts/bench_compare.sh
#   STRICT_TIME=1 scripts/bench_compare.sh      # same-machine comparison
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-}"
if [ -z "$baseline" ]; then
    baseline="$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)"
fi
if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
    echo "bench_compare.sh: no baseline BENCH_*.json found (run scripts/bench.sh and commit the snapshot)" >&2
    exit 1
fi

benchtime="${BENCHTIME:-0.3s}"
time_threshold="${TIME_THRESHOLD:-25}"    # percent ns/op growth before warning
alloc_threshold="${ALLOC_THRESHOLD:-10}"  # percent allocs/op growth before failing
strict_time="${STRICT_TIME:-0}"
pattern="${PATTERN:-^(BenchmarkE[0-9]+|BenchmarkExploreParallel|BenchmarkSweep|BenchmarkFuzz|BenchmarkDeterministicEngine|BenchmarkLockstepEngine|BenchmarkTimedEngine|BenchmarkTelemetryOverhead|BenchmarkServe|BenchmarkSMRThroughput)}"

# Benchmarks whose allocs/op must match the baseline exactly: the
# single-threaded deterministic hot paths the zero-alloc work of PR 1 pinned,
# plus the timed and lockstep engine hot paths once they moved onto pooled
# events / persistent goroutines (their counts are exactly reproducible; the
# anchored $ keeps the EngineN/n=… sub-benchmarks in the slack gate). The law
# audit (delivery ledger + post-run checks) rides these paths, so a regression
# here means the audit started allocating — the ledger must stay plain
# counters, never maps.
zero_alloc_re='^Benchmark(E1FailureFree|E1RoundsVsFaults|E4EarlyStop|E4FloodSet|E5Exhaustive|DeterministicEngine|TimedEngine|LockstepEngine|TelemetryOverhead/(e1|timed)/off)$'
# Benchmarks excluded from the alloc gate: worker pools scale with
# GOMAXPROCS, randomized averages scale with the iteration count.
skip_alloc_re='(ExploreParallel|/parallel$|E11AverageCase|E11Omission|E14LossyChannels)'

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

echo "== fresh benchmark pass (benchtime $benchtime) vs baseline $baseline"
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$fresh"

if ! grep -q '^Benchmark' "$fresh"; then
    echo "bench_compare.sh: pattern '$pattern' matched no benchmarks" >&2
    exit 1
fi

echo
awk -v time_thr="$time_threshold" -v alloc_thr="$alloc_threshold" \
    -v strict_time="$strict_time" \
    -v zero_re="$zero_alloc_re" -v skip_re="$skip_alloc_re" '
FNR == NR {
    # Baseline JSON: one benchmark record per line (the bench.sh format).
    if ($0 !~ /"name":/) next
    name = ""; ns = ""; al = ""
    if (match($0, /"name": "[^"]+"/))
        name = substr($0, RSTART + 9, RLENGTH - 10)
    if (match($0, /"ns\/op": [0-9.eE+]+/)) {
        f = substr($0, RSTART, RLENGTH); sub(/^"ns\/op": /, "", f); ns = f
    }
    if (match($0, /"allocs\/op": [0-9.eE+]+/)) {
        f = substr($0, RSTART, RLENGTH); sub(/^"allocs\/op": /, "", f); al = f
    }
    if (name != "") { base_ns[name] = ns; base_al[name] = al }
    next
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns = ""; al = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "allocs/op") al = $(i - 1)
    }
    seen[name] = 1
    if (!(name in base_ns)) {
        printf "NEW    %-42s %10s ns/op %8s allocs/op (no baseline entry — run scripts/bench.sh to refresh)\n", name, ns, al
        next
    }
    bns = base_ns[name] + 0; bal = base_al[name] + 0
    nns = ns + 0; nal = al + 0

    averdict = "ok"
    if (name ~ skip_re) {
        averdict = "skipped"
    } else if (name ~ zero_re) {
        if (nal > bal) { averdict = "FAIL (exact-match set)"; alloc_fail++ }
        else if (nal < bal) averdict = "improved"
    } else if (nal > bal * (1 + alloc_thr / 100) + 1) {
        averdict = sprintf("FAIL (>%d%%+1)", alloc_thr); alloc_fail++
    } else if (nal < bal) {
        averdict = "improved"
    }

    tverdict = "ok"
    if (bns > 0 && nns > bns * (1 + time_thr / 100)) {
        if (strict_time == "1") { tverdict = sprintf("FAIL (>%d%%)", time_thr); time_fail++ }
        else { tverdict = sprintf("WARN (>%d%%)", time_thr); time_warn++ }
    } else if (nns < bns) {
        tverdict = "improved"
    }

    printf "%-46s ns/op %10d -> %10d  %-14s allocs/op %7d -> %7d  %s\n",
        name, bns, nns, tverdict, bal, nal, averdict
}
END {
    for (name in base_ns)
        if (!(name in seen))
            printf "GONE   %-42s (in baseline, not in fresh run)\n", name
    printf "\n"
    if (time_warn > 0)
        printf "bench_compare: %d time regression(s) beyond %d%% — WARNING only (cross-machine ns/op is advisory; STRICT_TIME=1 to gate)\n", time_warn, time_thr
    if (alloc_fail > 0 || time_fail > 0) {
        printf "bench_compare: FAIL — %d alloc regression(s), %d strict time regression(s)\n", alloc_fail, time_fail
        exit 1
    }
    print "bench_compare: OK — no alloc regressions against " ARGV[1]
}
' "$baseline" "$fresh"
