#!/usr/bin/env bash
# bench.sh — run the E-series benchmarks and persist a machine-readable
# snapshot, so the performance trajectory of the repo is tracked commit over
# commit (see docs/benchmarks.md).
#
# Usage:
#   scripts/bench.sh                 # all E-series + engine benchmarks
#   scripts/bench.sh 'BenchmarkE5'   # a subset, by regexp
#   BENCHTIME=3s scripts/bench.sh    # longer per-benchmark runtime
#
# Output: benchmark text on stdout, plus BENCH_<UTC date>.json in the repo
# root: one record per benchmark with every reported metric (ns/op, B/op,
# allocs/op, and the domain metrics like rounds/msgs/executions).
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-^(BenchmarkE[0-9]+|BenchmarkExploreParallel|BenchmarkSweep|BenchmarkFuzz|BenchmarkDeterministicEngine|BenchmarkLockstepEngine|BenchmarkTimedEngine|BenchmarkTelemetryOverhead|BenchmarkServe|BenchmarkSMRThroughput)}"
benchtime="${BENCHTIME:-1s}"
stamp="$(date -u +%Y-%m-%d)"
out="BENCH_${stamp}.json"
txt="$(mktemp)"
trap 'rm -f "$txt"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$txt"

if ! grep -q '^Benchmark' "$txt"; then
    echo "bench.sh: pattern '$pattern' matched no benchmarks; not writing $out" >&2
    exit 1
fi

awk -v date="$stamp" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n  \"benchmarks\": [", date; n = 0 }
/^goos:/    { goos = $2 }
/^goarch:/  { goarch = $2 }
/^cpu:/     { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    if (n++) printf ",";
    printf "\n    {\"name\": \"%s\", \"iterations\": %s", $1, $2;
    for (i = 3; i + 1 <= NF; i += 2)
        printf ", \"%s\": %s", $(i + 1), $i;
    printf "}";
}
END {
    print "\n  ],";
    printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n}\n", goos, goarch, cpu;
}' "$txt" > "$out"

echo "wrote $out"
