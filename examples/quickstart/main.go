// Quickstart: run the paper's uniform consensus algorithm in the extended
// synchronous model, first failure-free (one round), then under the
// worst-case schedule that crashes the first two coordinators (f+1 = 3
// rounds), and check the verdicts.
package main

import (
	"fmt"
	"log"

	"repro/agree"
)

func main() {
	// Failure-free: the first coordinator imposes its proposal in one round.
	rep, err := agree.Run(agree.Config{N: 8, Protocol: agree.ProtocolCRW})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free: decided %d in %d round(s), %d messages, consensus ok = %t\n",
		rep.Decisions[8], rep.Rounds, rep.Counters.TotalMsgs(), rep.ConsensusErr == nil)

	// Worst case for f=2: the adversary silently kills coordinators p1 and
	// p2 in their own rounds; p3 finishes the job in round 3 = f+1.
	rep, err = agree.Run(agree.Config{
		N:      8,
		Faults: agree.CoordinatorCrashes(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("f=2 worst case: decided %d in %d round(s) (= f+1), crashed %v, consensus ok = %t\n",
		rep.Decisions[8], rep.Rounds, rep.Crashed, rep.ConsensusErr == nil)

	// The same run on the goroutine runtime: one goroutine per process,
	// channel-based delivery, identical outcome.
	rep, err = agree.Run(agree.Config{
		N:      8,
		Engine: agree.EngineLockstep,
		Faults: agree.CoordinatorCrashes(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lockstep engine: decided %d in %d round(s), consensus ok = %t\n",
		rep.Decisions[8], rep.Rounds, rep.ConsensusErr == nil)
}
