// faultsweep is a fault-injection campaign: it sweeps the number and style
// of crashes across all three protocols, validating uniform consensus on
// every run and charting decision rounds and traffic. This is the workload
// a downstream user would run to pick a protocol for a crash-prone cluster.
//
// The whole protocol × scenario matrix is submitted as one agree.Sweep
// batch, so it parallelizes across -workers and can cross-validate every
// deterministic scenario on the lockstep engine with -crosscheck.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/agree"
)

func main() {
	workers := flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	crosscheck := flag.Bool("crosscheck", false, "cross-validate order-insensitive scenarios on every other engine")
	flag.Parse()

	const n = 12
	t := n - 1

	scenarios := []struct {
		name   string
		faults agree.FaultSpec
	}{
		{"none", agree.NoFaults()},
		{"kill 1 coordinator", agree.CoordinatorCrashes(1)},
		{"kill 4 coordinators", agree.CoordinatorCrashes(4)},
		{"kill 4, deliver data", agree.CoordinatorCrashesDelivering(4, 0)},
		{"kill 4, deliver all", agree.CoordinatorCrashesDelivering(4, agree.CtrlAll)},
		{"random p=0.2 seed=1", agree.RandomFaults(1, 0.2, t)},
		{"random p=0.4 seed=9", agree.RandomFaults(9, 0.4, t)},
	}
	protocols := []agree.Protocol{agree.ProtocolCRW, agree.ProtocolEarlyStop, agree.ProtocolFloodSet}

	// One flat batch: protocol-major, scenario-minor — the same order the
	// report is printed in.
	var configs []agree.Config
	for _, p := range protocols {
		for _, sc := range scenarios {
			configs = append(configs, agree.Config{N: n, T: t, Protocol: p, Faults: sc.faults})
		}
	}
	sr := agree.Sweep(configs, agree.SweepOptions{Workers: *workers, CrossCheck: *crosscheck})

	fmt.Printf("fault sweep on n=%d processes (t=%d)\n\n", n, t)
	fmt.Printf("%-11s %-24s %-7s %-7s %-9s %-8s\n",
		"protocol", "fault scenario", "f", "rounds", "messages", "verdict")
	for pi, p := range protocols {
		for si, sc := range scenarios {
			item := sr.Items[pi*len(scenarios)+si]
			if item.Err != nil {
				log.Fatalf("%s/%s: %v", p, sc.name, item.Err)
			}
			rep := item.Report
			verdict := "ok"
			if rep.ConsensusErr != nil {
				verdict = "VIOLATION"
			}
			if len(item.CrossChecked) > 0 {
				verdict += " (x-checked)"
			}
			fmt.Printf("%-11s %-24s %-7d %-7d %-9d %-8s\n",
				p, sc.name, rep.Faults(), rep.MaxDecideRound(), rep.Counters.TotalMsgs(), verdict)
		}
		fmt.Println()
	}

	agg := sr.Aggregate
	fmt.Printf("aggregate: %d runs, %d violations, rounds histogram %v\n",
		agg.Configs, agg.Violations, agg.RoundHistogram)
	fmt.Printf("traffic:   %s\n\n", agg.Counters.String())
	fmt.Println("Reading: CRW tracks f+1 exactly and transmits O(n) messages per round;")
	fmt.Println("the classic baselines pay one extra round (early stopping) or always t+1")
	fmt.Println("rounds and Θ(n²) messages per round (flooding).")
}
