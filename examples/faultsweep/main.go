// faultsweep is a fault-injection campaign: it sweeps the number and style
// of crashes across all three protocols, validating uniform consensus on
// every run and charting decision rounds and traffic. This is the workload
// a downstream user would run to pick a protocol for a crash-prone cluster.
package main

import (
	"fmt"
	"log"

	"repro/agree"
)

func main() {
	const n = 12
	t := n - 1

	fmt.Printf("fault sweep on n=%d processes (t=%d)\n\n", n, t)
	fmt.Printf("%-11s %-24s %-7s %-7s %-9s %-8s\n",
		"protocol", "fault scenario", "f", "rounds", "messages", "verdict")

	scenarios := []struct {
		name   string
		faults agree.FaultSpec
	}{
		{"none", agree.NoFaults()},
		{"kill 1 coordinator", agree.CoordinatorCrashes(1)},
		{"kill 4 coordinators", agree.CoordinatorCrashes(4)},
		{"kill 4, deliver data", agree.CoordinatorCrashesDelivering(4, 0)},
		{"kill 4, deliver all", agree.CoordinatorCrashesDelivering(4, agree.CtrlAll)},
		{"random p=0.2 seed=1", agree.RandomFaults(1, 0.2, t)},
		{"random p=0.4 seed=9", agree.RandomFaults(9, 0.4, t)},
	}

	for _, p := range []agree.Protocol{agree.ProtocolCRW, agree.ProtocolEarlyStop, agree.ProtocolFloodSet} {
		for _, sc := range scenarios {
			rep, err := agree.Run(agree.Config{N: n, T: t, Protocol: p, Faults: sc.faults})
			if err != nil {
				log.Fatalf("%s/%s: %v", p, sc.name, err)
			}
			verdict := "ok"
			if rep.ConsensusErr != nil {
				verdict = "VIOLATION"
			}
			fmt.Printf("%-11s %-24s %-7d %-7d %-9d %-8s\n",
				p, sc.name, rep.Faults(), rep.MaxDecideRound(), rep.Counters.TotalMsgs(), verdict)
		}
		fmt.Println()
	}

	fmt.Println("Reading: CRW tracks f+1 exactly and transmits O(n) messages per round;")
	fmt.Println("the classic baselines pay one extra round (early stopping) or always t+1")
	fmt.Println("rounds and Θ(n²) messages per round (flooding).")
}
