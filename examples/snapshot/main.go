// snapshot demonstrates the paper's canonical related-work example of a
// synchronization message (Section 1): the Chandy–Lamport distributed
// snapshot, where a marker sent atomically after regular messages cleanly
// separates pre- and post-snapshot traffic on each FIFO channel — the same
// role the COMMIT plays in the paper's send phase.
//
// The example runs a token bank over the asynchronous goroutine engine,
// takes a snapshot mid-flight, and verifies the conservation invariant:
// recorded balances plus tokens captured inside channels equal the initial
// total, even though the nodes never stop exchanging tokens while the
// snapshot is being assembled.
package main

import (
	"fmt"
	"log"

	"repro/internal/async"
	"repro/internal/snapshot"
)

func main() {
	const (
		n       = 6
		balance = 1200
		hops    = 8
	)
	collector := snapshot.NewCollector()
	handlers := make([]async.Handler, n)
	total := int64(0)
	for i := 1; i <= n; i++ {
		var plan []snapshot.PlannedTransfer
		for j := 1; j <= n; j++ {
			if j != i {
				plan = append(plan, snapshot.PlannedTransfer{
					To: async.NodeID(j), Amount: balance / int64(2*n), Hops: hops,
				})
			}
		}
		bank := snapshot.NewBank(async.NodeID(i), n, balance, plan)
		handlers[i-1] = snapshot.NewNode(bank, collector, i == 1) // node 1 initiates
		total += balance
	}

	eng, err := async.NewEngine(handlers)
	if err != nil {
		log.Fatal(err)
	}
	eng.Run()

	if !collector.Complete(n) {
		log.Fatal("snapshot incomplete")
	}
	states := collector.States()
	channels := collector.Channels()

	fmt.Printf("token bank: %d nodes × %d tokens = %d total; %d messages exchanged\n\n",
		n, balance, total, eng.MessagesSent())
	fmt.Println("recorded node states:")
	for i := 1; i <= n; i++ {
		fmt.Printf("  node %d: %4d tokens\n", i, states[async.NodeID(i)])
	}
	inFlight := snapshot.TotalInChannels(channels)
	fmt.Printf("\nrecorded channel states: %d channels with in-flight tokens, %d tokens total\n",
		countNonEmpty(channels), inFlight)
	for _, cs := range channels {
		if len(cs.Payloads) > 0 {
			fmt.Printf("  %d -> %d: %d message(s)\n", cs.From, cs.To, len(cs.Payloads))
		}
	}

	recorded := snapshot.TotalBalances(states)
	fmt.Printf("\nconservation check: %d (balances) + %d (in flight) = %d, initial total %d\n",
		recorded, inFlight, recorded+inFlight, total)
	if recorded+inFlight != total {
		log.Fatal("INVARIANT VIOLATED: the snapshot is inconsistent")
	}
	fmt.Println("invariant holds: the marker-synchronized cut is consistent.")
}

func countNonEmpty(channels []snapshot.ChannelState) int {
	c := 0
	for _, cs := range channels {
		if len(cs.Payloads) > 0 {
			c++
		}
	}
	return c
}
