// lancluster answers the deployment question of Section 2.2: on a LAN with
// reliable channels, when does the extended model (round duration D+δ) beat
// the classic model (round duration D)?
//
// The example prices measured executions of both optimal algorithms — the
// paper's f+1-round protocol and the classic min(f+2, t+1) early-stopping
// baseline — across a sweep of δ/D ratios and fault counts, and prints the
// crossover chart. The rule of Section 2.2 (extended wins iff δ < D/(f+1))
// emerges from the measurements.
package main

import (
	"fmt"
	"log"

	"repro/agree"
	"repro/internal/timing"
)

func main() {
	const n, t = 10, 8
	const d = 1.0 // one classic round = 1 time unit

	fmt.Println("LAN cluster sizing: extended vs classic synchronous consensus")
	fmt.Printf("n=%d processes, t=%d tolerated crashes, D=%.1f\n\n", n, t, d)
	fmt.Printf("%-4s %-6s %-10s %-10s %-9s %-22s\n",
		"f", "δ/D", "ext time", "cl time", "winner", "rule δ/D < 1/(f+1)")

	for _, f := range []int{0, 1, 2, 4} {
		for _, ratio := range []float64{0.02, 0.1, 0.25, 0.5, 1.0} {
			cost := timing.Cost{D: d, Delta: d * ratio}

			ext, err := agree.Run(agree.Config{N: n, Faults: agree.CoordinatorCrashes(f)})
			if err != nil {
				log.Fatal(err)
			}
			cl, err := agree.Run(agree.Config{N: n, T: t, Protocol: agree.ProtocolEarlyStop,
				Faults: agree.CoordinatorCrashes(f)})
			if err != nil {
				log.Fatal(err)
			}

			extTime := cost.ExtendedTime(ext.MaxDecideRound())
			clTime := cost.ClassicTime(cl.MaxDecideRound())
			winner := "classic"
			if extTime < clTime {
				winner = "extended"
			}
			rule := fmt.Sprintf("%.3f < %.3f = %t", ratio, timing.CrossoverRatio(f, t),
				ratio < timing.CrossoverRatio(f, t))
			fmt.Printf("%-4d %-6.2f %-10.2f %-10.2f %-9s %-22s\n",
				f, ratio, extTime, clTime, winner, rule)
		}
		fmt.Println()
	}
	fmt.Println("Reading: with commodity-LAN overheads (δ/D ~ a few percent), the")
	fmt.Println("extended model wins for every realistic fault count — the paper's case")
	fmt.Println("for adding pipelined synchronization messages to reliable local networks.")
}
