// smrlog runs the application the paper's introduction motivates:
// fault-tolerant state machine replication. It commits a replicated command
// log slot by slot — each slot one uniform-consensus instance — over the
// paper's extended-model algorithm and over the classic early-stopping
// baseline, and compares throughput with and without replica crashes.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/smr"
)

func main() {
	const n, slots = 5, 40

	fmt.Printf("replicated log: %d replicas, %d slots\n\n", n, slots)
	fmt.Printf("%-16s %-22s %-7s %-13s %-9s\n",
		"protocol", "crash schedule", "rounds", "rounds/commit", "messages")

	type scenario struct {
		name    string
		crashes map[sim.ProcID]int
	}
	scenarios := []scenario{
		{"none", nil},
		{"p1 dies at slot 10", map[sim.ProcID]int{1: 10}},
		{"p1@5, p2@15, p3@25", map[sim.ProcID]int{1: 5, 2: 15, 3: 25}},
	}

	type variant struct {
		label    string
		protocol smr.Protocol
		rotate   bool
	}
	variants := []variant{
		{"crw", smr.ProtocolCRW, false},
		{"crw+rotation", smr.ProtocolCRW, true},
		{"earlystop", smr.ProtocolEarlyStop, false},
	}
	for _, v := range variants {
		for _, sc := range scenarios {
			res, err := smr.Run(smr.Config{N: n, Slots: slots, Protocol: v.protocol,
				RotateLeader: v.rotate, CrashDuringSlot: sc.crashes})
			if err != nil {
				log.Fatalf("%s/%s: %v", v.label, sc.name, err)
			}
			if err := smr.Validate(res); err != nil {
				log.Fatalf("%s/%s: log divergence: %v", v.label, sc.name, err)
			}
			fmt.Printf("%-16s %-22s %-7d %-13.2f %-9d\n",
				v.label, sc.name, res.TotalRounds, res.RoundsPerCommit(), res.Counters.TotalMsgs())
		}
		fmt.Println()
	}

	fmt.Println("Reading: over the extended model a healthy log commits one slot per")
	fmt.Println("synchronous round — the classic model needs two. After a leader dies the")
	fmt.Println("static p1-first rotation of Figure 1 wastes one round per slot; the")
	fmt.Println("leader-rotation variant (a pure id renaming, so Theorem 1 carries over)")
	fmt.Println("restores one-round commits immediately. Survivors' logs stay")
	fmt.Println("byte-identical through every crash: uniform agreement, slot after slot.")
}
