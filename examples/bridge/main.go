// bridge demonstrates Section 4 of the paper: the synchronous CRW algorithm
// and the asynchronous ◇S-based MR99 algorithm are "two implementations in
// different settings of the very same basic principle". It runs both on the
// same proposals and prints the per-round communication structure side by
// side: the coordinator's data broadcast is common to both, and the paper's
// pipelined COMMIT replaces MR99's entire n(n-1)-message second step.
package main

import (
	"fmt"
	"log"

	"repro/agree"
	"repro/internal/consensus/mr99"
	"repro/internal/sim"
)

func main() {
	const n = 8
	proposals := make([]sim.Value, n)
	raw := make([]int64, n)
	for i := range proposals {
		proposals[i] = sim.Value(100 + i)
		raw[i] = int64(100 + i)
	}

	// Synchronous side: the paper's algorithm in the extended model.
	crw, err := agree.Run(agree.Config{N: n, Proposals: raw})
	if err != nil {
		log.Fatal(err)
	}

	// Asynchronous side: MR99 with an immediately accurate ◇S detector.
	mr, err := mr99.Run(mr99.Config{N: n, T: (n - 1) / 2}, proposals, &mr99.GSTOracle{GST: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("the bridge: one consensus principle, two timing models (n =", n, ")")
	fmt.Println()
	fmt.Println("                         CRW (extended sync)    MR99 (async + ◇S)")
	fmt.Printf("coordinator broadcast    %-22d %d\n", crw.Counters.DataMsgs, mr.Trace[0].Step1Msgs)
	fmt.Printf("\"value locked\" signal    %d (COMMIT, pipelined)  %d (all-to-all AUX step)\n",
		crw.Counters.CtrlMsgs, mr.Trace[0].Step2Msgs)
	fmt.Printf("total messages           %-22d %d\n",
		crw.Counters.TotalMsgs(), mr.Trace[0].Step1Msgs+mr.Trace[0].Step2Msgs)
	fmt.Printf("rounds to decide         %-22d %d\n", crw.MaxDecideRound(), maxRound(mr))
	fmt.Printf("decided value            %-22d %d\n", crw.Decisions[1], int64(anyDecision(mr)))
	fmt.Println()
	fmt.Println("Reading: in both algorithms the round coordinator broadcasts its estimate")
	fmt.Println("and the processes need evidence the value is locked before deciding. The")
	fmt.Println("extended model's synchrony lets a single pipelined one-bit COMMIT carry")
	fmt.Println("that evidence; asynchrony forces MR99 to reconstruct it with a quorum of")
	fmt.Println("n-t AUX messages from a full second communication step.")

	// The fault case: crash the first coordinator in both worlds.
	crwF, err := agree.Run(agree.Config{N: n, Proposals: raw, Faults: agree.CoordinatorCrashes(1)})
	if err != nil {
		log.Fatal(err)
	}
	mrF, err := mr99.Run(mr99.Config{N: n, T: (n - 1) / 2}, proposals,
		&mr99.GSTOracle{GST: 1, Crashes: map[sim.ProcID]int{1: 1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("with p1 crashed: CRW decides in round %d (f+1), MR99 in round %d —\n",
		crwF.MaxDecideRound(), maxRound(mrF))
	fmt.Println("the rotating coordinator recovers in one extra round in both settings.")
}

func maxRound(r *mr99.Result) int {
	max := 0
	for _, rd := range r.DecideRound {
		if rd > max {
			max = rd
		}
	}
	return max
}

func anyDecision(r *mr99.Result) sim.Value {
	for _, v := range r.Decisions {
		return v
	}
	return sim.NoValue
}
