// Command agreexplore exhaustively model-checks the paper's algorithm (or
// one of its ablations) for a small system: it enumerates every crash
// schedule and delivery truncation the extended model allows, validates
// uniform consensus and the f+1 decision bound on each execution, and prints
// either the exploration statistics or a minimal counterexample script.
//
// Examples:
//
//	agreexplore -n 4 -t 2                 # faithful algorithm: expect 0 violations
//	agreexplore -n 4 -t 1 -order asc      # ablation: f+1 bound violated
//	agreexplore -n 3 -t 1 -commit-as-data # ablation: uniform agreement violated
//	agreexplore -n 4 -t 2 -worst          # find + replay the slowest execution
//	agreexplore -n 3 -t 1 -commit-as-data -replay 1,0,0,0,1   # trace a counterexample
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	os.Exit(run())
}

// run holds the real main so deferred cleanups (CPU profile flush) execute
// before the process exits.
func run() int {
	var (
		n            = flag.Int("n", 4, "number of processes (keep small: the space is exhaustive)")
		tt           = flag.Int("t", 2, "crash budget")
		order        = flag.String("order", "desc", "commit order: desc (faithful) or asc (ablation)")
		commitAsData = flag.Bool("commit-as-data", false, "fold the commit into the data step (ablation)")
		omitBudget   = flag.Int("omit-budget", 0, "additionally enumerate up to this many omission events per execution (ablation: the reliable-channel assumption falls; the f+1 bound is not checked)")
		budget       = flag.Int("budget", 50_000_000, "maximum executions to explore")
		maxCE        = flag.Int("max-counterexamples", 3, "stop after this many violations")
		worst        = flag.Bool("worst", false, "search for the slowest execution and replay it with a trace")
		replay       = flag.String("replay", "", "comma-separated choice script to replay with a trace")
		parallel     = flag.Bool("parallel", false, "shard the exploration across all CPUs")
		workers      = flag.Int("workers", 0, "worker-pool size with -parallel (0 = GOMAXPROCS)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "agreexplore:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "agreexplore:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	opts := core.Options{CommitAsData: *commitAsData}
	switch *order {
	case "desc":
	case "asc":
		opts.Order = core.OrderAscending
	default:
		fmt.Fprintf(os.Stderr, "agreexplore: unknown order %q\n", *order)
		return 1
	}

	factory := func(ch interface{ Choose(int) int }) check.Execution {
		props := make([]sim.Value, *n)
		for i := range props {
			props[i] = sim.Value(10 + i)
		}
		model := sim.ModelExtended
		if opts.CommitAsData {
			model = sim.ModelClassic
		}
		var adv sim.Adversary = adversary.NewFromChooser(ch, *tt, sim.Round(*n))
		if *omitBudget > 0 {
			adv = adversary.NewFromChooserWithOmissions(ch, *tt, sim.Round(*n), *omitBudget, *n)
		}
		return check.Execution{
			Procs:     core.NewSystem(props, opts),
			Adv:       adv,
			Cfg:       sim.Config{Model: model, Horizon: sim.Round(*n + 2)},
			Proposals: props,
		}
	}
	if *replay != "" {
		script, err := check.ParseScript(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "agreexplore:", err)
			return 1
		}
		return replayScript(factory, script)
	}
	if *worst {
		w, err := check.FindWorstSchedule(factory, check.ExploreOpts{Budget: *budget})
		if err != nil {
			fmt.Fprintln(os.Stderr, "agreexplore:", err)
			return 1
		}
		fmt.Printf("worst execution over %d explored: decides at round %d with %d fault(s)\n",
			w.Executions, w.DecideRound, w.Faults)
		fmt.Printf("script %v — replaying with trace:\n\n", w.Script)
		return replayScript(factory, w.Script)
	}

	validator := func(ex check.Execution, res *sim.Result, engineErr error) error {
		if engineErr != nil {
			return engineErr
		}
		if err := check.Consensus(ex.Proposals, res); err != nil {
			return err
		}
		if *omitBudget > 0 {
			// The f+1 bound is a crash-model theorem; omission schedules are
			// judged on the consensus properties alone.
			return nil
		}
		return check.RoundBound(res, check.BoundFPlus1)
	}
	eopts := check.ExploreOpts{Budget: *budget, MaxCounterexamples: *maxCE, Workers: *workers}
	var stats check.Stats
	var err error
	if *parallel {
		stats, err = check.ExploreParallel(factory, validator, eopts)
	} else {
		stats, err = check.Explore(factory, validator, eopts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "agreexplore:", err)
		return 1
	}

	mode := "sequential"
	if *parallel {
		if effective := check.EffectiveWorkers(eopts); effective > 1 {
			// "≤" because degenerate spaces (no choice points to shard) run
			// on fewer workers than the pool offers.
			mode = fmt.Sprintf("parallel/≤%d workers", effective)
		} else {
			// ExploreParallel degrades to the sequential explorer when only
			// one worker (or a tiny budget) is in play; report what ran.
			mode = "sequential (parallel fallback)"
		}
	}
	fmt.Printf("explored      %d executions (n=%d, t=%d, order=%s, commit-as-data=%t, %s)\n",
		stats.Executions, *n, *tt, *order, *commitAsData, mode)
	fmt.Printf("max faults    %d\n", stats.MaxFaults)
	fmt.Printf("max decide    round %d (bound t+1 = %d)\n", stats.MaxDecideRound, *tt+1)
	if len(stats.Counterexamples) == 0 {
		fmt.Println("violations    none — every execution satisfies uniform consensus and the f+1 bound")
		return 0
	}
	fmt.Printf("violations    %d\n", len(stats.Counterexamples))
	for i, ce := range stats.Counterexamples {
		fmt.Printf("  [%d] %v\n", i+1, ce.Err)
		fmt.Printf("      script %v (re-run with -replay %s for a full trace)\n",
			ce.Script, check.ScriptString(ce.Script))
		fmt.Printf("      decisions %v, crashed %v\n", ce.Result.Decisions, ce.Result.Crashed)
	}
	return 2
}

// replayScript re-executes one scripted run with a full transcript and
// verdict, returning the process exit code.
func replayScript(factory check.RunFactory, script []int) int {
	log := trace.New()
	ex := factory(&check.Replayer{Values: script})
	cfg := ex.Cfg
	cfg.Trace = log
	eng, err := sim.NewEngine(cfg, ex.Procs, ex.Adv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agreexplore:", err)
		return 1
	}
	res, runErr := eng.Run()
	fmt.Print(log.String())
	fmt.Println()
	fmt.Printf("decisions %v (rounds %v), crashed %v\n", res.Decisions, res.DecideRound, res.Crashed)
	if runErr != nil {
		fmt.Printf("engine error: %v\n", runErr)
	}
	if err := check.Consensus(ex.Proposals, res); err != nil {
		fmt.Printf("VERDICT: %v\n", err)
		return 2
	}
	if err := check.RoundBound(res, check.BoundFPlus1); err != nil {
		fmt.Printf("VERDICT: consensus holds but %v\n", err)
		return 2
	}
	fmt.Println("VERDICT: uniform consensus and the f+1 bound hold")
	return 0
}
