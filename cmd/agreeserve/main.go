// Command agreeserve operates the replicated-log service: pipelined
// consensus instances on the timed engine, fed by a workload generator, with
// optional mid-stream crash and omission injection. It prints the
// client-observed service metrics — commit-latency percentiles, sustained
// commands per simulated hour, and leader-recovery times.
//
// Examples:
//
//	agreeserve -n 8 -workload poisson -rate 2000 -max-commands 10000
//	agreeserve -n 8 -lat-profile 1g -workload poisson -rate 500000 -max-commands 20000
//	agreeserve -n 4 -workload closed -clients 16 -think 0.5 -max-commands 5000
//	agreeserve -n 4 -workload bursty -rate 10 -burst-rate 500 -base-dur 20 -burst-dur 2 -duration 200
//	agreeserve -n 4 -crash 1@5.5 -max-commands 1000          # leader crash mid-stream
//	agreeserve -n 4 -no-rotate -crash 1@5.5 -max-commands 1000
//	agreeserve -n 5 -omit-procs 4 -omit-send 0.2 -max-commands 1000
//	agreeserve -n 6 -workload poisson -rate 5 -max-commands 500 -verify  # determinism law
//	agreeserve -n 8 -workload poisson -rate 100 -max-commands 1000 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/agree"
	"repro/internal/prof"
)

func main() {
	var (
		n        = flag.Int("n", 4, "number of replicas")
		protocol = flag.String("protocol", "crw", "per-slot protocol: crw, earlystop")
		engine   = flag.String("engine", "timed", "engine kind (see agreerun -list-engines)")
		bits     = flag.Int("bits", 64, "command bit width b")
		noRotate = flag.Bool("no-rotate", false, "disable per-slot leader rotation (a dead static coordinator then wastes a round per slot)")

		wl       = flag.String("workload", "fixed", "workload: fixed, poisson, bursty, closed")
		rate     = flag.Float64("rate", 10, "open-loop arrival rate (base rate for bursty)")
		burst    = flag.Float64("burst-rate", 0, "bursty: burst-phase arrival rate")
		baseDur  = flag.Float64("base-dur", 10, "bursty: base-phase duration")
		burstDur = flag.Float64("burst-dur", 1, "bursty: burst-phase duration")
		clients  = flag.Int("clients", 8, "closed-loop: number of clients")
		think    = flag.Float64("think", 0, "closed-loop: think time between commit and next command")
		thinkExp = flag.Bool("think-poisson", false, "closed-loop: exponential think times instead of fixed")
		wlSeed   = flag.Int64("workload-seed", 1, "workload sampling seed")

		maxCmds  = flag.Int("max-commands", 0, "stop after this many committed commands")
		duration = flag.Float64("duration", 0, "stop launching slots after this simulated time")
		maxSlots = flag.Int("max-slots", 0, "stop after this many slots")
		batch    = flag.Int("batch", 0, "max commands per slot (0 = unbounded)")
		noPipe   = flag.Bool("no-pipeline", false, "launch each slot only after the previous one committed")

		crash     = flag.String("crash", "", "crash schedule: comma-separated id@time, e.g. 1@5.5,3@20")
		omitProcs = flag.String("omit-procs", "", "omission-faulty replicas, comma-separated ids")
		omitSend  = flag.Float64("omit-send", 0, "per-round whole-plan send-omission probability")
		omitRecv  = flag.Float64("omit-recv", 0, "per-(round, sender) receive-omission probability")
		omitSeed  = flag.Int64("omit-seed", 1, "omission sampling seed")

		latProfile = flag.String("lat-profile", "", "LAN latency profile (100m, 1g, 10g)")
		latD       = flag.Float64("lat-d", 0, "synchrony bound D (fixed/jitter latency model)")
		latDelta   = flag.Float64("lat-delta", 0, "control-step extension δ")
		latFloor   = flag.Float64("lat-floor", 0, "jitter latency floor")
		latSpread  = flag.Float64("lat-spread", 0, "jitter width; floor+spread > D injects timing faults")
		latSeed    = flag.Int64("lat-seed", 1, "jitter seed")

		asJSON = flag.Bool("json", false, "print the report as canonical JSON")
		verify = flag.Bool("verify", false, "check the determinism law (two byte-identical runs) before reporting")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		telemetryOut = flag.String("telemetry-out", "", `write the run's metrics timeline JSON to this file ("-" = stdout)`)
		chromeTrace  = flag.String("chrome-trace", "", "write the run's Chrome trace_event JSON to this file (one slot span per commit; loads in Perfetto / chrome://tracing)")
		metricsOut   = flag.String("metrics-out", "", `write the per-slot latency/throughput timeline JSON to this file ("-" = stdout) and print the latency summary table`)
	)
	flag.Parse()

	latency, err := agree.LatencyFromFlags(*latProfile, *latD, *latDelta, *latFloor, *latSpread, *latSeed)
	if err != nil {
		fail(err)
	}

	var workload agree.WorkloadSpec
	switch *wl {
	case "fixed":
		workload = agree.FixedArrivals(*rate, *wlSeed)
	case "poisson":
		workload = agree.PoissonArrivals(*rate, *wlSeed)
	case "bursty":
		workload = agree.BurstyArrivals(*rate, *burst, *baseDur, *burstDur, *wlSeed)
	case "closed":
		workload = agree.ClosedClients(*clients, *think, *thinkExp, *wlSeed)
	default:
		fail(fmt.Errorf("unknown workload %q (fixed, poisson, bursty, closed)", *wl))
	}

	crashAt, err := parseCrashSchedule(*crash)
	if err != nil {
		fail(err)
	}

	cfg := agree.ServeConfig{
		N:            *n,
		Protocol:     agree.Protocol(*protocol),
		Bits:         *bits,
		RotateLeader: !*noRotate,
		Engine:       agree.EngineKind(*engine),
		Latency:      latency,
		Workload:     workload,
		MaxCommands:  *maxCmds,
		Duration:     *duration,
		MaxSlots:     *maxSlots,
		BatchLimit:   *batch,
		NoPipeline:   *noPipe,
		CrashAt:      crashAt,
	}
	if *omitProcs != "" {
		procs, err := parseIDs(*omitProcs)
		if err != nil {
			fail(err)
		}
		cfg.Omissions = &agree.ServeOmissions{Procs: procs, SendProb: *omitSend, RecvProb: *omitRecv, Seed: *omitSeed}
	}
	cfg.Telemetry = *telemetryOut != "" || *chromeTrace != "" || *metricsOut != ""

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		fail(err)
	}
	// finish flushes the profiles and exits, so the -cpuprofile/-memprofile
	// files are complete on every post-start exit path.
	finish := func(code int) {
		stopCPU()
		if err := prof.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "agreeserve:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}
	failf := func(err error) {
		fmt.Fprintln(os.Stderr, "agreeserve:", err)
		finish(1)
	}

	if *verify {
		if err := agree.VerifyServeDeterminism(cfg); err != nil {
			failf(err)
		}
	}
	rep, err := agree.Serve(cfg)
	if err != nil {
		failf(err)
	}

	tel := rep.Telemetry()
	if err := prof.WriteFile(*telemetryOut, tel.MetricsJSON()); err != nil {
		failf(err)
	}
	if err := prof.WriteFile(*chromeTrace, tel.ChromeTrace()); err != nil {
		failf(err)
	}
	if err := prof.WriteFile(*metricsOut, tel.SlotTimelineJSON()); err != nil {
		failf(err)
	}

	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			failf(err)
		}
		fmt.Println(string(out))
		finish(0)
	}

	fmt.Printf("service     %s on %s engine, n=%d, rotate=%v\n", cfg.Protocol, orDefault(*engine, "timed"), *n, cfg.RotateLeader)
	fmt.Printf("workload    %s\n", *wl)
	fmt.Printf("committed   %d commands in %d slots (%d rounds, histogram %v)\n",
		rep.Commands, rep.Slots, rep.TotalRounds, rep.RoundsHist)
	fmt.Printf("throughput  %.0f commands/simulated-hour (last commit at t=%g)\n", rep.CommandsPerHour, rep.LastCommit)
	fmt.Printf("latency     p50=%g p99=%g p999=%g mean=%g max=%g\n",
		rep.LatencyP50, rep.LatencyP99, rep.LatencyP999, rep.LatencyMean, rep.LatencyMax)
	if len(rep.Crashed) > 0 {
		ids := make([]int, 0, len(rep.Crashed))
		for id := range rep.Crashed {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Printf("crash       replica %d at t=%g\n", id, rep.Crashed[id])
		}
	}
	for _, r := range rep.Recoveries {
		fmt.Printf("recovery    leader %d crashed at t=%g, next commit at t=%g: %g (%s)\n",
			r.Replica, r.CrashTime, r.Commit, r.Time(), rotationNote(cfg.RotateLeader))
	}
	if len(rep.Omissive) > 0 {
		fmt.Printf("omissive    %v (rounds with injected omissions per replica)\n", rep.Omissive)
	}
	fmt.Printf("traffic     %s\n", rep.Counters.String())
	fmt.Printf("ledger      %s (cross-slot conservation audited)\n", rep.Ledger.String())
	fmt.Printf("engines     %d built, %d reuse hits\n", rep.EnginesBuilt, rep.EngineReuses)
	if *verify {
		fmt.Println("determinism byte-identical across two runs (law verified)")
	}
	if *metricsOut != "" && *metricsOut != "-" {
		fmt.Println("\ncommit-latency distribution")
		fmt.Print(tel.LatencyTable())
	}
	finish(0)
}

// parseCrashSchedule parses "1@5.5,3@20" into a crash map.
func parseCrashSchedule(s string) (map[int]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[int]float64{}
	for _, part := range strings.Split(s, ",") {
		idStr, tStr, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("crash entry %q is not id@time", part)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			return nil, fmt.Errorf("crash entry %q: bad replica id: %v", part, err)
		}
		t, err := strconv.ParseFloat(tStr, 64)
		if err != nil {
			return nil, fmt.Errorf("crash entry %q: bad time: %v", part, err)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("replica %d crashes twice in %q", id, s)
		}
		out[id] = t
	}
	return out, nil
}

// parseIDs parses a comma-separated id list.
func parseIDs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad replica id %q: %v", part, err)
		}
		out = append(out, id)
	}
	return out, nil
}

// rotationNote labels a recovery with the bound it should match.
func rotationNote(rotate bool) string {
	if rotate {
		return "one-round bound with rotation"
	}
	return "two rounds: static coordinator dead"
}

// orDefault substitutes a default for the empty string.
func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// fail prints the error and exits nonzero.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "agreeserve:", err)
	os.Exit(1)
}
