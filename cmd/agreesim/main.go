// Command agreesim replays the declarative scenario catalog: every checked-in
// *.scenario file under scenarios/ describes one consensus run — protocol,
// system size, engines, latency model, fault script — and the outcome it must
// produce (verdict class, round bounds, simulated-time bounds). agreesim
// loads the catalog, executes each entry on each selected engine through the
// harness registry, and fails with a deterministic diff naming the scenario
// file and the diverging field when any expectation breaks.
//
// Examples:
//
//	agreesim -list                              # catalog inventory
//	agreesim -run all                           # full catalog, each scenario's own engines
//	agreesim -run all -engines all              # full catalog forced onto every registered engine
//	agreesim -run crash/worst-case-n8-f2        # one scenario
//	agreesim -run all -engines deterministic    # tier-1: catalog on the deterministic engine
//	agreesim -run all -json                     # machine-readable results
//	agreesim -convert findings.txt -n 16 -name-prefix omission/nightly -out scenarios
//	                                            # turn an `agreefuzz -findings-out` artifact
//	                                            # into checked-in scenario files
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/agree"
	"repro/internal/fuzz"
	"repro/internal/prof"
	"repro/internal/scenario"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir        = flag.String("dir", "scenarios", "scenario catalog directory")
		list       = flag.Bool("list", false, "list the catalog and exit")
		runNames   = flag.String("run", "", "scenarios to run: 'all' or a comma-separated name list")
		engines    = flag.String("engines", "", "engine override: 'all' or a comma-separated kind list (default: each scenario's own engines)")
		workers    = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS; any count yields identical results)")
		jsonOut    = flag.Bool("json", false, "emit results as JSON")
		convert    = flag.String("convert", "", "convert an agreefuzz -findings-out artifact into scenario files and exit")
		out        = flag.String("out", "scenarios", "catalog root the converter writes under")
		namePrefix = flag.String("name-prefix", "", "scenario name prefix for converted findings (required with -convert; e.g. omission/nightly-20260807)")
		n          = flag.Int("n", 0, "converter: system size of the campaign the findings came from")
		tt         = flag.Int("t", 0, "converter: resilience bound of the campaign (0 = n-1)")
		protocol   = flag.String("protocol", "crw", "converter: protocol of the campaign")
		engine     = flag.String("engine", "", "converter: restrict the scenario to one engine kind (default: all engines)")
		cad        = flag.Bool("commit-as-data", false, "converter: the campaign ran the commit-as-data ablation")
		order      = flag.String("order", "desc", "converter: commit order of the campaign (desc or asc)")

		latProfile = flag.String("lat-profile", "", "converter: LAN latency profile of the campaign (100m, 1g, 10g)")
		latD       = flag.Float64("lat-d", 0, "converter: synchrony bound D of the campaign's latency model")
		latDelta   = flag.Float64("lat-delta", 0, "converter: control-step extension δ")
		latFloor   = flag.Float64("lat-floor", 0, "converter: jitter latency floor")
		latSpread  = flag.Float64("lat-spread", 0, "converter: jitter width")
		latSeed    = flag.Int64("lat-seed", 1, "converter: jitter seed")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		telemetryOut = flag.String("telemetry-out", "", `write the run's metrics timeline JSON to this file ("-" = stdout); requires -run to select exactly one executed (scenario, engine) pair`)
		chromeTrace  = flag.String("chrome-trace", "", "write the run's Chrome trace_event JSON to this file (loads in Perfetto / chrome://tracing); same exactly-one-run rule as -telemetry-out")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "agreesim:", err)
		return 1
	}

	if *convert != "" {
		lat, err := convertLatency(*latProfile, *latD, *latDelta, *latFloor, *latSpread, *latSeed)
		if err != nil {
			return fail(err)
		}
		if *order != "desc" && *order != "asc" {
			return fail(fmt.Errorf("bad -order %q (want desc or asc)", *order))
		}
		err = convertFindings(convertConfig{
			findings: *convert, out: *out, prefix: *namePrefix,
			n: *n, t: *tt, protocol: *protocol, engine: *engine, latency: lat,
			commitAsData: *cad, orderAscending: *order == "asc",
			workers: *workers,
		})
		if err != nil {
			return fail(err)
		}
		return 0
	}

	if *list {
		entries, err := scenario.LoadDir(*dir)
		if err != nil {
			return fail(err)
		}
		for _, e := range entries {
			sc := e.Scenario
			eng := "all"
			if len(sc.Engines) > 0 {
				eng = strings.Join(sc.Engines, ",")
			}
			fmt.Printf("%-44s n=%-3d expect=%-12s engines=%-30s %s\n", sc.Name, sc.N, sc.Expect.Verdict, eng, sc.Info)
		}
		fmt.Printf("%d scenarios under %s\n", len(entries), *dir)
		return 0
	}

	if *runNames == "" {
		flag.Usage()
		return 1
	}
	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		return fail(err)
	}
	defer stopCPU()
	wantTelemetry := *telemetryOut != "" || *chromeTrace != ""
	opts := agree.ScenarioOptions{Dir: *dir, Workers: *workers, Telemetry: wantTelemetry}
	if *runNames != "all" {
		opts.Names = strings.Split(*runNames, ",")
		for i := range opts.Names {
			opts.Names[i] = strings.TrimSpace(opts.Names[i])
		}
	}
	if *engines != "" {
		if *engines == "all" {
			for _, info := range agree.Engines() {
				opts.Engines = append(opts.Engines, info.Kind)
			}
		} else {
			for _, e := range strings.Split(*engines, ",") {
				opts.Engines = append(opts.Engines, agree.EngineKind(strings.TrimSpace(e)))
			}
		}
	}
	rep, err := agree.RunScenarios(opts)
	if err != nil {
		return fail(err)
	}
	if wantTelemetry {
		if err := exportTelemetry(rep, *telemetryOut, *chromeTrace); err != nil {
			return fail(err)
		}
	}
	if *jsonOut {
		if err := printJSON(rep); err != nil {
			return fail(err)
		}
	} else {
		printText(rep)
	}
	if err := prof.WriteHeap(*memprofile); err != nil {
		return fail(err)
	}
	if rep.Failed > 0 {
		return 2
	}
	return 0
}

// exportTelemetry writes the telemetry artifacts of a catalog run. The flags
// export one run's timeline, so the selection must resolve to exactly one
// executed (scenario, engine) pair — narrow with -run and -engines otherwise.
func exportTelemetry(rep *agree.ScenarioReport, telemetryOut, chromeTrace string) error {
	var hit *agree.ScenarioResult
	executed := 0
	for i := range rep.Results {
		if rep.Results[i].Skipped {
			continue
		}
		executed++
		hit = &rep.Results[i]
	}
	if executed != 1 {
		return fmt.Errorf("-telemetry-out/-chrome-trace export one run's timeline but the selection executed %d (scenario, engine) pairs; narrow it with -run and -engines", executed)
	}
	if err := prof.WriteFile(telemetryOut, hit.Telemetry().MetricsJSON()); err != nil {
		return err
	}
	return prof.WriteFile(chromeTrace, hit.Telemetry().ChromeTrace())
}

// printText renders the results one line per (scenario, engine) run, with
// expectation mismatches spelled out and a trailing summary.
func printText(rep *agree.ScenarioReport) {
	for _, r := range rep.Results {
		switch {
		case r.Skipped:
			fmt.Printf("skip %-44s %-13s (%s)\n", r.Name, r.Engine, r.SkipReason)
		case r.Err != nil:
			fmt.Printf("FAIL %-44s %-13s %v\n", r.Name, r.Engine, r.Err)
		default:
			line := fmt.Sprintf("ok   %-44s %-13s verdict=%s rounds=%d decide=%d",
				r.Name, r.Engine, r.Verdict, r.Rounds, r.MaxDecideRound)
			if r.SimTime > 0 {
				line += fmt.Sprintf(" simtime=%g", r.SimTime)
			}
			fmt.Println(line)
		}
	}
	fmt.Printf("scenarios %d, runs %d (skipped %d), failures %d\n",
		rep.Scenarios, rep.Ran, rep.Skipped, rep.Failed)
}

// jsonResult is the machine-readable shape of one result.
type jsonResult struct {
	Name           string  `json:"name"`
	File           string  `json:"file"`
	Engine         string  `json:"engine"`
	Skipped        bool    `json:"skipped,omitempty"`
	SkipReason     string  `json:"skipReason,omitempty"`
	Verdict        string  `json:"verdict,omitempty"`
	Rounds         int     `json:"rounds,omitempty"`
	MaxDecideRound int     `json:"maxDecideRound,omitempty"`
	SimTime        float64 `json:"simTime,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// printJSON renders the full report as JSON in deterministic order.
func printJSON(rep *agree.ScenarioReport) error {
	type jsonReport struct {
		Scenarios int          `json:"scenarios"`
		Ran       int          `json:"ran"`
		Skipped   int          `json:"skipped"`
		Failed    int          `json:"failed"`
		Results   []jsonResult `json:"results"`
	}
	jr := jsonReport{Scenarios: rep.Scenarios, Ran: rep.Ran, Skipped: rep.Skipped, Failed: rep.Failed}
	for _, r := range rep.Results {
		res := jsonResult{
			Name: r.Name, File: r.File, Engine: string(r.Engine),
			Skipped: r.Skipped, SkipReason: r.SkipReason,
			Verdict: r.Verdict, Rounds: r.Rounds, MaxDecideRound: r.MaxDecideRound,
			SimTime: r.SimTime,
		}
		if r.Err != nil {
			res.Error = r.Err.Error()
		}
		jr.Results = append(jr.Results, res)
	}
	data, err := json.MarshalIndent(jr, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// convertLatency maps the converter's latency flags onto the scenario
// format's latency value (mirroring agree.LatencyFromFlags precedence:
// profile, then jitter, then fixed).
func convertLatency(profile string, d, delta, floor, spread float64, seed int64) (scenario.Latency, error) {
	switch {
	case profile != "":
		if d != 0 || delta != 0 || floor != 0 || spread != 0 {
			return scenario.Latency{}, fmt.Errorf("-lat-profile cannot be combined with the other -lat-* flags")
		}
		return scenario.Latency{Kind: "profile", Profile: profile}, nil
	case spread != 0:
		if d == 0 {
			return scenario.Latency{}, fmt.Errorf("-lat-spread requires -lat-d (the synchrony bound)")
		}
		return scenario.Latency{Kind: "jitter", Seed: seed, D: d, Delta: delta, Floor: floor, Spread: spread}, nil
	case d != 0:
		if floor != 0 {
			return scenario.Latency{}, fmt.Errorf("-lat-floor only applies to the jitter model; give -lat-spread as well")
		}
		return scenario.Latency{Kind: "fixed", D: d, Delta: delta}, nil
	default:
		if delta != 0 || floor != 0 {
			return scenario.Latency{}, fmt.Errorf("-lat-delta/-lat-floor need a latency model; give -lat-d (and -lat-spread for jitter)")
		}
		return scenario.Latency{}, nil
	}
}

// convertConfig carries the converter's inputs: the campaign parameters the
// findings artifact was produced under, and where the scenario files go.
type convertConfig struct {
	findings       string
	out            string
	prefix         string
	n, t           int
	protocol       string
	engine         string
	latency        scenario.Latency
	commitAsData   bool
	orderAscending bool
	workers        int
}

// convertFindings turns each replay script of an agreefuzz findings artifact
// into a scenario file: the script is re-executed under the campaign's
// parameters, the observed verdict and bounds become the scenario's
// expectations, and the expectation-checked scenario is confirmed green
// before it is written — so every converted file is a passing catalog entry
// from the moment it lands.
func convertFindings(cfg convertConfig) error {
	if cfg.prefix == "" {
		return fmt.Errorf("-convert requires -name-prefix (e.g. omission/nightly-20260807)")
	}
	if cfg.n < 1 {
		return fmt.Errorf("-convert requires -n (the campaign's system size)")
	}
	data, err := os.ReadFile(cfg.findings)
	if err != nil {
		return err
	}
	scripts, err := fuzz.ParseFindings(string(data))
	if err != nil {
		return err
	}
	if len(scripts) == 0 {
		fmt.Printf("no findings in %s; nothing to convert\n", cfg.findings)
		return nil
	}
	written := 0
	for i, script := range scripts {
		if mp := script.MaxProc(); mp > cfg.n {
			return fmt.Errorf("finding %d names p%d but the campaign size is n=%d", i+1, mp, cfg.n)
		}
		sc := &scenario.Scenario{
			Name:           fmt.Sprintf("%s-%d", cfg.prefix, i+1),
			Info:           fmt.Sprintf("converted from fuzz finding %d of %s", i+1, filepath.Base(cfg.findings)),
			Protocol:       cfg.protocol,
			N:              cfg.n,
			T:              cfg.t,
			CommitAsData:   cfg.commitAsData,
			OrderAscending: cfg.orderAscending,
			Latency:        cfg.latency,
			Faults:         script.String(),
			Expect:         scenario.Expect{Verdict: scenario.VerdictPass},
		}
		if cfg.engine != "" {
			sc.Engines = []string{cfg.engine}
		}
		if err := sc.Validate(); err != nil {
			return err
		}
		if err := pinExpectations(sc, cfg.workers); err != nil {
			return fmt.Errorf("finding %d (%q): %w", i+1, script.String(), err)
		}
		path := filepath.Join(cfg.out, filepath.FromSlash(sc.Name)+scenario.Ext)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(sc.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (expect=%s rounds=%d decide<=%d)\n",
			path, sc.Expect.Verdict, sc.Expect.Rounds, sc.Expect.DecideRoundMax)
		written++
	}
	fmt.Printf("converted %d findings into %s\n", written, cfg.out)
	return nil
}

// pinExpectations executes a scenario, records the observed verdict and round
// outcome as its expectation, and re-executes to confirm the pinned scenario
// is green. Engines must agree on the observed outcome (scenario scripts are
// order-insensitive); a divergence is an error, not a silently single-engine
// pin.
func pinExpectations(sc *scenario.Scenario, workers int) error {
	observe := func() (*agree.ScenarioReport, error) {
		return agree.RunScenarios(agree.ScenarioOptions{
			Sources: []agree.ScenarioSource{{File: "converted", Text: sc.String()}},
			Workers: workers,
		})
	}
	rep, err := observe()
	if err != nil {
		return err
	}
	pinned := false
	for _, r := range rep.Results {
		if r.Skipped {
			continue
		}
		if !pinned {
			sc.Expect = scenario.Expect{
				Verdict:        r.Verdict,
				Rounds:         r.Rounds,
				DecideRoundMax: r.MaxDecideRound,
			}
			pinned = true
			continue
		}
		if r.Verdict != sc.Expect.Verdict || r.Rounds != sc.Expect.Rounds ||
			r.MaxDecideRound > sc.Expect.DecideRoundMax {
			return fmt.Errorf("engines diverge on the observed outcome (%s: verdict=%s rounds=%d decide=%d vs pinned verdict=%s rounds=%d decide<=%d)",
				r.Engine, r.Verdict, r.Rounds, r.MaxDecideRound,
				sc.Expect.Verdict, sc.Expect.Rounds, sc.Expect.DecideRoundMax)
		}
	}
	if !pinned {
		return fmt.Errorf("no engine could execute the scenario")
	}
	rep, err = observe()
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			return fmt.Errorf("pinned expectation did not hold on re-run: %w", r.Err)
		}
	}
	return nil
}
