// Command agreebench regenerates the experiment tables E1–E16, which map
// one-to-one onto the quantitative claims of the paper (see DESIGN.md for
// the experiment index and EXPERIMENTS.md for paper-vs-measured records).
//
// Usage:
//
//	agreebench                 # run every experiment
//	agreebench -e E3           # run one experiment (E3/E16 execute on the timed engine)
//	agreebench -list           # list experiment ids and titles
//	agreebench -workers 8      # fan batched experiments across 8 sweep workers
//	agreebench -crosscheck     # additionally validate every batched run on
//	                           # every other registered engine
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/agree"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("e", "", "experiment id to run (E1..E16); empty runs all")
	list := flag.Bool("list", false, "list experiments and exit")
	workers := flag.Int("workers", 1, "sweep worker-pool size for batched experiments (0 = GOMAXPROCS)")
	crosscheck := flag.Bool("crosscheck", false, "cross-validate batched runs on every other registered engine")
	flag.Parse()

	experiments.SetSweepOptions(agree.SweepOptions{Workers: *workers, CrossCheck: *crosscheck})

	if *list {
		for _, t := range experiments.All() {
			fmt.Printf("%-4s %s\n", t.ID, t.Title)
		}
		return
	}
	if *exp != "" {
		t := experiments.ByID(*exp)
		if t == nil {
			fmt.Fprintf(os.Stderr, "agreebench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		fmt.Println(t.String())
		printPoolUsage()
		exitOnFail([]*experiments.Table{t})
		return
	}
	tables := experiments.All()
	for _, t := range tables {
		fmt.Println(t.String())
	}
	printPoolUsage()
	exitOnFail(tables)
}

// printPoolUsage reports how much engine construction the sweep workers'
// caches saved: batched experiments rewind Reusable engines between jobs
// instead of rebuilding them.
func printPoolUsage() {
	if built, reuses := experiments.PoolUsage(); built+reuses > 0 {
		fmt.Printf("engine pool: %d built, %d reuse hits across batched sweeps\n", built, reuses)
	}
}

// exitOnFail exits non-zero if any experiment's verdict is not PASS, so the
// command doubles as a reproduction gate in CI.
func exitOnFail(tables []*experiments.Table) {
	for _, t := range tables {
		if len(t.Verdict) < 4 || t.Verdict[:4] != "PASS" {
			fmt.Fprintf(os.Stderr, "agreebench: %s failed: %s\n", t.ID, t.Verdict)
			os.Exit(1)
		}
	}
}
