// Command agreerun executes a single consensus instance and prints its
// transcript and verdict.
//
// Examples:
//
//	agreerun -n 6                           # failure-free CRW: one round
//	agreerun -n 6 -f 2                      # kill coordinators p1, p2
//	agreerun -n 6 -f 2 -deliver -prefix 1   # dying coordinators deliver data + 1 commit
//	agreerun -n 6 -protocol earlystop -f 1  # classic baseline
//	agreerun -n 6 -random -seed 7 -prob 0.3 # randomized fault injection
//	agreerun -n 6 -engine lockstep          # goroutine runtime
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/agree"
)

func main() {
	var (
		n        = flag.Int("n", 5, "number of processes")
		tt       = flag.Int("t", 0, "resilience bound for classic baselines (default n-1)")
		protocol = flag.String("protocol", "crw", "protocol: crw, earlystop, floodset")
		engine   = flag.String("engine", "deterministic", "engine: deterministic, lockstep")
		f        = flag.Int("f", 0, "crash the coordinators of the first f rounds")
		deliver  = flag.Bool("deliver", false, "dying coordinators complete their data step")
		prefix   = flag.Int("prefix", 0, "control prefix delivered by dying coordinators (-1 = all)")
		random   = flag.Bool("random", false, "use the randomized adversary instead of the coordinator killer")
		seed     = flag.Int64("seed", 1, "seed for -random")
		prob     = flag.Float64("prob", 0.2, "per-round crash probability for -random")
		simulate = flag.Bool("simulate", false, "run CRW through the Section 2.2 classic-model simulation")
		bits     = flag.Int("bits", 64, "proposal bit width b")
		quiet    = flag.Bool("quiet", false, "suppress the transcript")
		diag     = flag.Bool("diagram", false, "render a space-time diagram instead of the raw transcript")
	)
	flag.Parse()

	faults := agree.NoFaults()
	switch {
	case *random:
		faults = agree.RandomFaults(*seed, *prob, *n-1)
	case *f > 0 && *deliver:
		faults = agree.CoordinatorCrashesDelivering(*f, *prefix)
	case *f > 0:
		faults = agree.CoordinatorCrashes(*f)
	}

	cfg := agree.Config{
		N:                 *n,
		T:                 *tt,
		Protocol:          agree.Protocol(*protocol),
		Engine:            agree.EngineKind(*engine),
		Bits:              *bits,
		Faults:            faults,
		SimulateOnClassic: *simulate,
		Trace:             !*quiet && agree.EngineKind(*engine) == agree.EngineDeterministic,
		Diagram:           *diag && agree.EngineKind(*engine) == agree.EngineDeterministic,
	}
	rep, err := agree.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agreerun:", err)
		os.Exit(1)
	}
	switch {
	case rep.Diagram != "":
		fmt.Print(rep.Diagram)
		fmt.Println()
	case rep.Transcript != "" && !*quiet:
		fmt.Print(rep.Transcript)
		fmt.Println()
	}
	fmt.Printf("protocol    %s (%s engine)\n", cfg.Protocol, cfg.Engine)
	fmt.Printf("processes   n=%d\n", *n)
	fmt.Printf("faults      f=%d %v\n", rep.Faults(), keys(rep.Crashed))
	fmt.Printf("rounds      %d (last decision at round %d)\n", rep.MacroRounds, rep.MaxDecideRound())
	fmt.Printf("decisions   %v\n", rep.Decisions)
	fmt.Printf("traffic     %s\n", rep.Counters.String())
	if rep.ConsensusErr != nil {
		fmt.Printf("VERDICT     VIOLATION: %v\n", rep.ConsensusErr)
		os.Exit(2)
	}
	fmt.Println("VERDICT     uniform consensus holds")
}

// keys returns the sorted crash set for display.
func keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
