// Command agreerun executes a single consensus instance and prints its
// transcript and verdict.
//
// Examples:
//
//	agreerun -n 6                           # failure-free CRW: one round
//	agreerun -n 6 -f 2                      # kill coordinators p1, p2
//	agreerun -n 6 -f 2 -deliver -prefix 1   # dying coordinators deliver data + 1 commit
//	agreerun -n 6 -protocol earlystop -f 1  # classic baseline
//	agreerun -n 6 -random -seed 7 -prob 0.3 # randomized fault injection
//	agreerun -n 6 -engine lockstep          # goroutine runtime
//	agreerun -n 6 -f 2 -crosscheck          # validate the run on every engine
//	agreerun -n 8 -fsweep 7 -workers 4      # sweep f=0..7 across 4 workers
//	agreerun -list-engines                  # discover engines + capabilities
//	agreerun -n 6 -engine timed -f 2 -lat-profile 1g     # gigabit LAN latencies
//	agreerun -n 6 -engine timed -lat-d 1 -lat-delta 0.2  # fixed worst-case D/δ
//	agreerun -n 8 -engine timed -lat-d 1 -lat-delta 0.1 -lat-floor 0.5 -lat-spread 2 \
//	         -lat-seed 7                    # jitter past the bound: timing faults
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/agree"
	"repro/internal/prof"
)

func main() {
	var (
		n        = flag.Int("n", 5, "number of processes")
		tt       = flag.Int("t", 0, "resilience bound for classic baselines (default n-1)")
		protocol = flag.String("protocol", "crw", "protocol: crw, earlystop, floodset")
		engine   = flag.String("engine", "deterministic", "engine kind (see -list-engines)")
		listEng  = flag.Bool("list-engines", false, "list registered engines with their capabilities and exit")
		f        = flag.Int("f", 0, "crash the coordinators of the first f rounds")
		deliver  = flag.Bool("deliver", false, "dying coordinators complete their data step")
		prefix   = flag.Int("prefix", 0, "control prefix delivered by dying coordinators (-1 = all)")
		random   = flag.Bool("random", false, "use the randomized adversary instead of the coordinator killer")
		seed     = flag.Int64("seed", 1, "seed for -random")
		prob     = flag.Float64("prob", 0.2, "per-round crash probability for -random")
		simulate = flag.Bool("simulate", false, "run CRW through the Section 2.2 classic-model simulation")
		bits     = flag.Int("bits", 64, "proposal bit width b")
		quiet    = flag.Bool("quiet", false, "suppress the transcript")
		diag     = flag.Bool("diagram", false, "render a space-time diagram instead of the raw transcript")
		crosschk = flag.Bool("crosscheck", false, "re-run on every other registered engine and diff the outcomes")
		workers  = flag.Int("workers", 1, "worker-pool size for -fsweep (0 = GOMAXPROCS)")
		fsweep   = flag.Int("fsweep", -1, "sweep coordinator crashes f=0..fsweep and print one row per f (ignores the single-run fault flags)")

		latProfile = flag.String("lat-profile", "", "timed engine: LAN latency profile (100m, 1g, 10g)")
		latD       = flag.Float64("lat-d", 0, "timed engine: synchrony bound D (fixed/jitter latency model)")
		latDelta   = flag.Float64("lat-delta", 0, "timed engine: control-step extension δ")
		latFloor   = flag.Float64("lat-floor", 0, "timed engine: jitter latency floor")
		latSpread  = flag.Float64("lat-spread", 0, "timed engine: jitter width (latency = floor + U[0, spread)); floor+spread > D injects timing faults")
		latSeed    = flag.Int64("lat-seed", 1, "timed engine: jitter seed (pure per-message hash)")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		telemetryOut = flag.String("telemetry-out", "", `write the run's metrics timeline JSON to this file ("-" = stdout)`)
		chromeTrace  = flag.String("chrome-trace", "", "write the run's Chrome trace_event JSON to this file (loads in Perfetto / chrome://tracing)")
	)
	flag.Parse()

	if *listEng {
		fmt.Printf("%-15s %-6s %-14s %-9s %-6s\n", "engine", "trace", "deterministic", "reusable", "timed")
		for _, e := range agree.Engines() {
			fmt.Printf("%-15s %-6v %-14v %-9v %-6v\n", e.Kind, e.Trace, e.Deterministic, e.Reusable, e.Timed)
		}
		return
	}

	latency, err := agree.LatencyFromFlags(*latProfile, *latD, *latDelta, *latFloor, *latSpread, *latSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agreerun:", err)
		os.Exit(1)
	}

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agreerun:", err)
		os.Exit(1)
	}
	// finish flushes the profiles and exits; every post-flag-parse exit goes
	// through it so -cpuprofile/-memprofile files are complete even on error.
	finish := func(code int) {
		stopCPU()
		if err := prof.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "agreerun:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	if *fsweep >= 0 {
		if *random || *f > 0 || *deliver || *diag {
			fmt.Fprintln(os.Stderr, "agreerun: -fsweep always sweeps silent coordinator crashes; it cannot be combined with -random/-f/-deliver/-diagram")
			finish(1)
		}
		if *telemetryOut != "" || *chromeTrace != "" {
			fmt.Fprintln(os.Stderr, "agreerun: -telemetry-out/-chrome-trace export one run's timeline; they cannot be combined with -fsweep")
			finish(1)
		}
		if runSweep(*n, *tt, *protocol, *engine, *bits, *fsweep, *workers, *crosschk, *simulate, latency) {
			finish(2)
		}
		finish(0)
	}

	faults := agree.NoFaults()
	switch {
	case *random:
		faults = agree.RandomFaults(*seed, *prob, *n-1)
	case *f > 0 && *deliver:
		faults = agree.CoordinatorCrashesDelivering(*f, *prefix)
	case *f > 0:
		faults = agree.CoordinatorCrashes(*f)
	}

	canTrace := engineHasTrace(agree.EngineKind(*engine))
	cfg := agree.Config{
		N:                 *n,
		T:                 *tt,
		Protocol:          agree.Protocol(*protocol),
		Engine:            agree.EngineKind(*engine),
		Bits:              *bits,
		Faults:            faults,
		Latency:           latency,
		SimulateOnClassic: *simulate,
		Trace:             !*quiet && canTrace,
		Diagram:           *diag && canTrace,
		Telemetry:         *telemetryOut != "" || *chromeTrace != "",
	}
	item := agree.Sweep([]agree.Config{cfg}, agree.SweepOptions{Workers: 1, CrossCheck: *crosschk}).Items[0]
	if item.Err != nil {
		fmt.Fprintln(os.Stderr, "agreerun:", item.Err)
		finish(1)
	}
	rep := item.Report
	if err := prof.WriteFile(*telemetryOut, rep.Telemetry.MetricsJSON()); err != nil {
		fmt.Fprintln(os.Stderr, "agreerun:", err)
		finish(1)
	}
	if err := prof.WriteFile(*chromeTrace, rep.Telemetry.ChromeTrace()); err != nil {
		fmt.Fprintln(os.Stderr, "agreerun:", err)
		finish(1)
	}
	switch {
	case rep.Diagram != "":
		fmt.Print(rep.Diagram)
		fmt.Println()
	case rep.Transcript != "" && !*quiet:
		fmt.Print(rep.Transcript)
		fmt.Println()
	}
	fmt.Printf("protocol    %s (%s engine)\n", cfg.Protocol, cfg.Engine)
	fmt.Printf("processes   n=%d\n", *n)
	fmt.Printf("faults      f=%d %v\n", rep.Faults(), keys(rep.Crashed))
	fmt.Printf("rounds      %d (last decision at round %d)\n", rep.MacroRounds, rep.MaxDecideRound())
	fmt.Printf("decisions   %v\n", rep.Decisions)
	fmt.Printf("traffic     %s\n", rep.Counters.String())
	fmt.Printf("ledger      %s (conservation audited)\n", rep.Ledger.String())
	if rep.SimTime > 0 {
		fmt.Printf("simtime     %g (measured on the event clock)\n", rep.SimTime)
	}
	if len(item.CrossChecked) > 0 {
		fmt.Printf("crosscheck  consistent on %v\n", item.CrossChecked)
	} else if *crosschk {
		fmt.Println("crosscheck  skipped (order-sensitive fault spec)")
	}
	if rep.ConsensusErr != nil {
		fmt.Printf("VERDICT     VIOLATION: %v\n", rep.ConsensusErr)
		finish(2)
	}
	fmt.Println("VERDICT     uniform consensus holds")
	finish(0)
}

// engineHasTrace consults the live registry (the same source -list-engines
// prints) for the trace capability, so the default transcript degrades
// gracefully for ANY registered engine without it — not just the ones this
// binary happens to know by name. Unknown kinds report false; the run then
// fails with the registry's own "unknown engine" error.
func engineHasTrace(kind agree.EngineKind) bool {
	for _, e := range agree.Engines() {
		if e.Kind == kind {
			return e.Trace
		}
	}
	return false
}

// runSweep executes the -fsweep mode: coordinator-killer scenarios f=0..max
// as one parallel sweep, one table row per fault count. It reports whether
// any row errored or violated consensus.
func runSweep(n, tt int, protocol, engine string, bits, max, workers int, crosscheck, simulate bool, latency agree.LatencySpec) bool {
	configs := make([]agree.Config, 0, max+1)
	for f := 0; f <= max; f++ {
		configs = append(configs, agree.Config{
			N:                 n,
			T:                 tt,
			Protocol:          agree.Protocol(protocol),
			Engine:            agree.EngineKind(engine),
			Bits:              bits,
			Faults:            agree.CoordinatorCrashes(f),
			Latency:           latency,
			SimulateOnClassic: simulate,
		})
	}
	sr := agree.Sweep(configs, agree.SweepOptions{Workers: workers, CrossCheck: crosscheck})
	fmt.Printf("sweep: %s on n=%d, f=0..%d (%d workers requested)\n\n", protocol, n, max, workers)
	fmt.Printf("%-4s %-7s %-9s %-10s %-9s\n", "f", "rounds", "messages", "crosscheck", "verdict")
	failed := false
	for i, item := range sr.Items {
		if item.Err != nil {
			fmt.Printf("%-4d %v\n", i, item.Err)
			failed = true
			continue
		}
		verdict := "ok"
		if item.Report.ConsensusErr != nil {
			verdict = "VIOLATION"
			failed = true
		}
		xc := "-"
		if len(item.CrossChecked) > 0 {
			xc = "ok"
		}
		fmt.Printf("%-4d %-7d %-9d %-10s %-9s\n", item.Report.Faults(), item.Report.MaxDecideRound(),
			item.Report.Counters.TotalMsgs(), xc, verdict)
	}
	agg := sr.Aggregate
	fmt.Printf("\naggregate: %d configs, %d errors, %d violations, rounds histogram %v, %s\n",
		agg.Configs, agg.Errored, agg.Violations, agg.RoundHistogram, agg.Counters.String())
	fmt.Printf("engine pool: %d built, %d reuse hits (reusable engines rewind between jobs)\n",
		agg.EnginesBuilt, agg.EngineReuses)
	return failed
}

// keys returns the sorted crash set for display.
func keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
