// Command agreefuzz runs randomized fuzzing campaigns against the
// implemented consensus protocols: seeded random-walk fault schedules —
// crashes and, when enabled, send/receive-omission faults — at sizes the
// exhaustive explorer cannot reach, every run validated against the
// consensus oracles, violations minimized into compact replayable scripts.
//
// Examples:
//
//	agreefuzz -n 24 -t 8 -seeds 5000                    # faithful algorithm: expect 0 findings
//	agreefuzz -n 4 -t 2 -commit-as-data -seeds 200      # ablation: uniform agreement falls, shrunk scripts printed
//	agreefuzz -n 5 -t 3 -order asc -seeds 500           # ablation: f+1 bound falls
//	agreefuzz -n 8 -send-omit-prob 0.1 -omission-only -expect-findings  # omission model: agreement falls, as the
//	                                                    # paper's reliable-channel assumption predicts
//	agreefuzz -n 4 -t 2 -commit-as-data -replay 'p1@r1:100/0'  # replay a script with a full trace
//	agreefuzz -n 3 -replay 'p1@r1:so:01/11'             # replay an omission script
//	agreefuzz -n 12 -engine timed -seeds 5000 -crosscheck      # campaign on continuous time,
//	                                                    # findings replayed on every engine
//	agreefuzz -n 16 -seeds 100000 -laws                 # law hunt: conservation, ledger, clock and
//	                                                    # budget oracles stand next to the consensus oracle
//	agreefuzz -n 8 -engine timed -lat-d 1 -lat-floor 0.5 -lat-spread 2 -expect-findings
//	                                                    # timing-fault campaign: late messages
//	                                                    # (receive omissions) break agreement
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/agree"
	"repro/internal/prof"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n            = flag.Int("n", 16, "number of processes")
		tt           = flag.Int("t", 0, "crash budget per execution (0 = n-1)")
		protocol     = flag.String("protocol", "crw", "protocol: crw, earlystop or floodset")
		seeds        = flag.Int("seeds", 1000, "number of seeds to fuzz")
		seed0        = flag.Int64("seed", 1, "base seed (seed i of the campaign is seed+i)")
		crashProb    = flag.Float64("crashprob", 0.25, "per-(process, round) crash probability")
		order        = flag.String("order", "desc", "commit order: desc (faithful) or asc (ablation, CRW only)")
		commitAsData = flag.Bool("commit-as-data", false, "fold the commit into the data step (ablation, CRW only)")
		shrink       = flag.Bool("shrink", true, "minimize violating schedules by delta debugging")
		shrinkRuns   = flag.Int("max-shrink-runs", 512, "replay budget of the shrinker per finding")
		workers      = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS; any count yields the identical report)")
		crossCheck   = flag.Bool("crosscheck", false, "replay findings on every other registered engine and diff the outcome")
		replay       = flag.String("replay", "", "replay one fault script with a full trace instead of fuzzing")
		sendOmit     = flag.Float64("send-omit-prob", 0, "per-(process, round) send-omission probability (0 = crash model)")
		recvOmit     = flag.Float64("recv-omit-prob", 0, "per-(process, round) receive-omission probability")
		maxOmissive  = flag.Int("max-omissive", 0, "max distinct omission-faulty processes per execution (0 = n-1)")
		omitOnly     = flag.Bool("omission-only", false, "disable crash injection (pure omission campaign)")
		huntLaws     = flag.Bool("laws", false, "add the law oracles: every run must also satisfy message conservation, ledger consistency, the event-clock contract and the fault budget")
		expectFind   = flag.Bool("expect-findings", false, "invert the verdict: the campaign passes when it finds (and cleanly replays) at least one violation — for ablations where the paper predicts the break")
		findingsOut  = flag.String("findings-out", "", "write the findings' replay scripts to this file, one per line")
		engine       = flag.String("engine", "deterministic", "engine the campaign runs on (must be deterministic; timed enables -lat-* knobs)")

		latProfile = flag.String("lat-profile", "", "timed engine: LAN latency profile (100m, 1g, 10g)")
		latD       = flag.Float64("lat-d", 0, "timed engine: synchrony bound D (fixed/jitter latency model)")
		latDelta   = flag.Float64("lat-delta", 0, "timed engine: control-step extension δ")
		latFloor   = flag.Float64("lat-floor", 0, "timed engine: jitter latency floor")
		latSpread  = flag.Float64("lat-spread", 0, "timed engine: jitter width; floor+spread > D makes timing faults part of every walk")
		latSeed    = flag.Int64("lat-seed", 1, "timed engine: jitter seed (pure per-message hash)")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file (campaign samples are labeled per (engine, seed) for pprof's tags view)")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		telemetryOut = flag.String("telemetry-out", "", `-replay only: write the replay's metrics timeline JSON to this file ("-" = stdout)`)
		chromeTrace  = flag.String("chrome-trace", "", "-replay only: write the replay's Chrome trace_event JSON to this file")
	)
	flag.Parse()

	latency, err := agree.LatencyFromFlags(*latProfile, *latD, *latDelta, *latFloor, *latSpread, *latSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agreefuzz:", err)
		return 1
	}
	cfg := agree.FuzzConfig{
		N: *n, T: *tt, Protocol: agree.Protocol(*protocol),
		Engine: agree.EngineKind(*engine), Latency: latency,
		Seeds: *seeds, Seed: *seed0, CrashProb: *crashProb,
		SendOmitProb: *sendOmit, RecvOmitProb: *recvOmit,
		MaxOmissive: *maxOmissive, OmissionOnly: *omitOnly,
		CommitAsData: *commitAsData, Laws: *huntLaws, Shrink: *shrink, MaxShrinkRuns: *shrinkRuns,
		Workers: *workers, CrossCheck: *crossCheck,
	}
	switch *order {
	case "desc":
	case "asc":
		cfg.OrderAscending = true
	default:
		fmt.Fprintf(os.Stderr, "agreefuzz: unknown order %q\n", *order)
		return 1
	}

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agreefuzz:", err)
		return 1
	}
	defer stopCPU()
	defer func() {
		if err := prof.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "agreefuzz:", err)
		}
	}()

	if *replay != "" {
		cfg.Telemetry = *telemetryOut != "" || *chromeTrace != ""
		return replayScript(cfg, *replay, *telemetryOut, *chromeTrace)
	}
	if *telemetryOut != "" || *chromeTrace != "" {
		fmt.Fprintln(os.Stderr, "agreefuzz: -telemetry-out/-chrome-trace export one replay's timeline; combine them with -replay")
		return 1
	}

	rep, err := agree.Fuzz(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agreefuzz:", err)
		return 1
	}

	fmt.Printf("fuzzed        %d seeds (n=%d, t=%d, protocol=%s, engine=%s, crashprob=%g, order=%s, commit-as-data=%t)\n",
		rep.Seeds, *n, effectiveT(cfg), *protocol, *engine, *crashProb, *order, *commitAsData)
	if *sendOmit > 0 || *recvOmit > 0 {
		eff := *maxOmissive
		if eff <= 0 {
			eff = *n - 1
		}
		fmt.Printf("omissions     send-prob=%g recv-prob=%g max-omissive=%d omission-only=%t (oracle: consensus only — round bounds are crash-model theorems)\n",
			*sendOmit, *recvOmit, eff, *omitOnly)
	}
	if *huntLaws {
		fmt.Println("laws          conservation, ledger consistency, clock and fault-budget oracles standing")
	}
	fmt.Printf("executions    %d (incl. replay verification%s)\n", rep.Executions, shrinkNote(*shrink, *crossCheck))
	fmt.Printf("max faults    %d crashes, %d omission-faulty\n", rep.MaxFaults, rep.MaxOmissionFaulty)
	fmt.Printf("max decide    round %d\n", rep.MaxDecideRound)
	fmt.Printf("decide rounds %s\n", histogram(rep.RoundHistogram))

	divergence := false
	var scripts []string
	for _, f := range rep.Findings {
		if f.CrossCheckErr != nil {
			divergence = true
		}
		script := f.Shrunk
		if script == "" {
			script = f.Script
		}
		scripts = append(scripts, script)
	}
	if *findingsOut != "" {
		data := ""
		if len(scripts) > 0 {
			data = strings.Join(scripts, "\n") + "\n"
		}
		if err := os.WriteFile(*findingsOut, []byte(data), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "agreefuzz:", err)
			return 1
		}
	}

	if len(rep.Findings) == 0 {
		oracles := "the consensus oracles"
		if *huntLaws {
			oracles = "the consensus and law oracles"
		}
		fmt.Printf("findings      none — every sampled schedule satisfies %s\n", oracles)
		if *expectFind {
			fmt.Println("VERDICT: FAIL — the campaign was expected to find a violation (-expect-findings) and did not")
			return 2
		}
		return 0
	}
	fmt.Printf("findings      %d\n", len(rep.Findings))
	for i, f := range rep.Findings {
		class := ""
		if f.Law != "" {
			class = fmt.Sprintf(" [law %s]", f.Law)
		}
		fmt.Printf("  [%d] seed %d%s: %v\n", i+1, f.Seed, class, f.Err)
		fmt.Printf("      script %q\n", f.Script)
		if f.Shrunk != "" || f.ShrunkErr != nil {
			fmt.Printf("      shrunk %q (%d crash + %d omission events): %v\n",
				f.Shrunk, f.ShrunkCrashes, f.ShrunkOmissions, f.ShrunkErr)
		}
		if len(f.CrossChecked) > 0 {
			fmt.Printf("      cross-checked on %v\n", f.CrossChecked)
		}
		if f.CrossCheckErr != nil {
			fmt.Printf("      CROSS-CHECK DIVERGENCE: %v\n", f.CrossCheckErr)
		}
		fmt.Printf("      reproduce with -replay '%s'\n", scripts[i])
	}
	if *expectFind {
		if divergence {
			fmt.Println("VERDICT: FAIL — findings found but a cross-engine replay diverged")
			return 2
		}
		how := "found and replay-verified"
		if *shrink {
			how = "found, shrunk and replay-verified"
		}
		if *crossCheck {
			how += ", cross-checked on every engine"
		}
		fmt.Printf("VERDICT: OK — the predicted violation was %s\n", how)
		return 0
	}
	return 2
}

// effectiveT mirrors the campaign's crash-budget defaulting for the summary
// line: zero under -omission-only (crash injection disabled), n-1 when
// unset, the flag value otherwise.
func effectiveT(cfg agree.FuzzConfig) int {
	if cfg.OmissionOnly || cfg.N == 1 {
		return 0
	}
	if cfg.T <= 0 || cfg.T >= cfg.N {
		return cfg.N - 1
	}
	return cfg.T
}

// shrinkNote annotates the execution counter with the extra work enabled.
func shrinkNote(shrink, crossCheck bool) string {
	switch {
	case shrink && crossCheck:
		return ", shrinking and cross-checks"
	case shrink:
		return " and shrinking"
	case crossCheck:
		return " and cross-checks"
	default:
		return ""
	}
}

// histogram renders a round histogram compactly in round order.
func histogram(h map[int]int) string {
	rounds := make([]int, 0, len(h))
	for r := range h {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	out := ""
	for i, r := range rounds {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("r%d:%d", r, h[r])
	}
	if out == "" {
		return "(no passing runs)"
	}
	return out
}

// replayScript re-executes one crash script with a full transcript and
// oracle verdict, through the exact protocol construction and oracle the
// campaign used (agree.FuzzReplayScript) — including the script-vs-n
// validation, so an out-of-range script is an error, not a silently
// failure-free passing run.
func replayScript(cfg agree.FuzzConfig, text, telemetryOut, chromeTrace string) int {
	rep, err := agree.FuzzReplayScript(cfg, text, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agreefuzz:", err)
		return 1
	}
	if err := prof.WriteFile(telemetryOut, rep.Telemetry.MetricsJSON()); err != nil {
		fmt.Fprintln(os.Stderr, "agreefuzz:", err)
		return 1
	}
	if err := prof.WriteFile(chromeTrace, rep.Telemetry.ChromeTrace()); err != nil {
		fmt.Fprintln(os.Stderr, "agreefuzz:", err)
		return 1
	}
	fmt.Print(rep.Transcript)
	fmt.Println()
	fmt.Printf("decisions %v (rounds %v), crashed %v, omissive %v\n",
		rep.Decisions, rep.DecideRound, rep.Crashed, rep.Omissive)
	if rep.Err != nil {
		if rep.Law != "" {
			fmt.Printf("VERDICT: [law %s] %v\n", rep.Law, rep.Err)
		} else {
			fmt.Printf("VERDICT: %v\n", rep.Err)
		}
		return 2
	}
	verdict := "uniform consensus and the round bound hold"
	if cfg.Laws {
		verdict += "; all laws hold"
	}
	fmt.Println("VERDICT: " + verdict)
	return 0
}
